//! One callable experiment per paper figure/table (DESIGN.md §3 index).
//!
//! Every function builds a fresh deterministic testbed, drives the client
//! tasks the paper describes, and returns a structured result with a
//! `render()` that prints the same rows the paper reports. The integration
//! tests under `/tests` assert on these results; the bench harness times
//! and prints them.

use crate::census::{census, CensusSummary};
use crate::topology::{Testbed, TestbedConfig};
use crate::zones::addrs;
use std::net::{IpAddr, Ipv6Addr};
use v6dns::codec::RType;
use v6dns::poison::PoisonPolicy;
use v6host::profiles::OsProfile;
use v6host::tasks::{AppTask, TaskOutcome};
use v6host::vpn::VpnConfig;
use v6portal::scoring::{score_legacy, score_rfc8925_aware, ConnInfo, Score, SubtestResults};

fn browse(name: &str) -> AppTask {
    AppTask::Browse {
        name: name.parse().expect("static name"),
        path: "/".into(),
    }
}

/// Outcome → `ConnInfo` for the scoring engine.
fn conn_info(o: &TaskOutcome) -> Option<ConnInfo> {
    match o {
        TaskOutcome::HttpOk { status, peer, .. } => Some(ConnInfo {
            peer: *peer,
            status: *status,
        }),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// FIG 2 — inadvertent IPv4 usage / census motivation
// ---------------------------------------------------------------------

/// Result of the Fig. 2 reproduction.
#[derive(Debug)]
pub struct Fig2Result {
    /// The dual-stack laptop reached the IPv4-literal service.
    pub echolink_worked: bool,
    /// It was counted as an IPv6-only client by the naive census.
    pub naive_counted: bool,
    /// The accurate census excludes it.
    pub accurate_counted: bool,
}

/// Fig. 2: a dual-stack Windows laptop runs an IPv4-literal application on
/// the v6 SSID and is wrongly counted by the SC23 census.
pub fn fig2_literal_v4_census() -> Fig2Result {
    let mut tb = Testbed::build(TestbedConfig {
        // SC23 condition: no intervention.
        poison: PoisonPolicy::Off,
        ..TestbedConfig::default()
    });
    let laptop = tb.add_host(OsProfile::windows_10());
    tb.boot();
    let o = tb.run_task(
        laptop,
        AppTask::LiteralV4 {
            addr: addrs::ECHOLINK_V4.parse().expect("static"),
            port: 5198,
        },
        20,
    );
    let (entries, _) = census(&mut tb);
    let e = &entries[0];
    Fig2Result {
        echolink_worked: o.is_success(),
        naive_counted: e.naive_counted,
        accurate_counted: e.accurate_counted,
    }
}

impl Fig2Result {
    /// Paper-style row.
    pub fn render(&self) -> String {
        format!(
            "FIG2 dual-stack laptop: echolink(v4 literal)={} naive-census-counted={} accurate-census-counted={}",
            self.echolink_worked, self.naive_counted, self.accurate_counted
        )
    }
}

// ---------------------------------------------------------------------
// FIG 3 — the 5G gateway's dead ULA RDNSS and the managed-switch fix
// ---------------------------------------------------------------------

/// Result of the Fig. 3 reproduction.
#[derive(Debug)]
pub struct Fig3Result {
    /// Managed switch deployed?
    pub managed_switch: bool,
    /// RDNSS entries the client learned.
    pub rdnss: Vec<Ipv6Addr>,
    /// DNS queries the client sent over IPv6.
    pub dns_v6_queries: u64,
    /// Packets the gateway dropped for lack of a route (dead ULA traffic).
    pub gateway_no_route_drops: u64,
    /// DNS queries the healthy Pi answered over IPv6.
    pub pi_v6_answers: u64,
    /// The browse outcome.
    pub browse: TaskOutcome,
}

/// Fig. 3: without the managed switch, the advertised ULA resolvers are
/// dead (queries die at the gateway); with it, `fd00:976a::9` answers.
pub fn fig3_ra_workaround(managed_switch: bool) -> Fig3Result {
    let mut tb = Testbed::build(TestbedConfig {
        managed_switch,
        pi_dhcp: managed_switch, // the Pi deploys together with the switch
        ..TestbedConfig::default()
    });
    let client = tb.add_host(OsProfile::linux());
    tb.boot();
    let before_drops = tb.gateway().no_route_drops;
    let browse = tb.run_task(client, browse("ip6.me"), 20);
    let h = tb.host(client);
    let rdnss = h.rdnss.clone();
    let dns_v6 = h.dns_via_v6;
    let drops = tb.gateway().no_route_drops - before_drops;
    let pi_answers = tb.pi_server().v6_queries;
    Fig3Result {
        managed_switch,
        rdnss,
        dns_v6_queries: dns_v6,
        gateway_no_route_drops: drops,
        pi_v6_answers: pi_answers,
        browse,
    }
}

impl Fig3Result {
    /// Paper-style row.
    pub fn render(&self) -> String {
        format!(
            "FIG3 managed_switch={} rdnss={:?} v6-dns-queries={} dead-drops={} pi-answers={} browse-ok={}",
            self.managed_switch,
            self.rdnss,
            self.dns_v6_queries,
            self.gateway_no_route_drops,
            self.pi_v6_answers,
            self.browse.is_success()
        )
    }
}

// ---------------------------------------------------------------------
// FIG 4 — the full-topology client matrix
// ---------------------------------------------------------------------

/// One client row of the Fig. 4 matrix.
#[derive(Debug)]
pub struct MatrixRow {
    /// OS name.
    pub os: String,
    /// RFC 8925 engaged after boot.
    pub rfc8925_engaged: bool,
    /// Holds an IPv4 data path after boot.
    pub has_v4: bool,
    /// Browse of the IPv4-only sc24 site.
    pub sc24: TaskOutcome,
    /// Browse of dual-stack ip6.me.
    pub ip6me: TaskOutcome,
    /// Was the client redirected to the intervention page?
    pub intervened: bool,
}

impl MatrixRow {
    /// Paper-style row.
    pub fn render(&self) -> String {
        let fam = |o: &TaskOutcome| match o.peer() {
            Some(IpAddr::V6(_)) => "v6",
            Some(IpAddr::V4(_)) => "v4",
            None => "fail",
        };
        format!(
            "FIG4 {:<28} rfc8925={:<5} v4-path={:<5} sc24=via-{:<4} ip6me=via-{:<4} intervened={}",
            self.os,
            self.rfc8925_engaged,
            self.has_v4,
            fam(&self.sc24),
            fam(&self.ip6me),
            self.intervened
        )
    }
}

/// Fig. 4: run the canonical client mix through the full topology.
pub fn fig4_topology_matrix() -> Vec<MatrixRow> {
    let profiles = vec![
        OsProfile::macos(),
        OsProfile::windows_10(),
        OsProfile::linux(),
        OsProfile::nintendo_switch(),
    ];
    matrix_for(profiles)
}

/// Shared machinery for FIG4 and TBL-A.
pub fn matrix_for(profiles: Vec<OsProfile>) -> Vec<MatrixRow> {
    let mut rows = Vec::new();
    for profile in profiles {
        let mut tb = Testbed::paper_default();
        let os = profile.name.clone();
        let id = tb.add_host(profile);
        tb.boot();
        let sc24 = tb.run_task(id, browse("sc24.supercomputing.org"), 25);
        let ip6me = tb.run_task(id, browse("ip6.me"), 25);
        let h = tb.host(id);
        let intervened = matches!(
            (&sc24, &ip6me),
            (TaskOutcome::HttpOk { body, .. }, _) | (_, TaskOutcome::HttpOk { body, .. })
                if body.contains("helpdesk")
        );
        rows.push(MatrixRow {
            os,
            rfc8925_engaged: h.v6only_mode,
            has_v4: h.v4_active(),
            sc24,
            ip6me,
            intervened,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// FIG 5 / ABL-2 — mirror scoring
// ---------------------------------------------------------------------

/// Result of a mirror test run.
#[derive(Debug)]
pub struct ScoringResult {
    /// OS under test.
    pub os: String,
    /// Raw per-subtest outcomes.
    pub subtests: SubtestResults,
    /// Legacy (SC23) score.
    pub legacy: Score,
    /// Revised (RFC 8925-aware) score.
    pub revised: Score,
}

impl ScoringResult {
    /// Paper-style row.
    pub fn render(&self) -> String {
        format!(
            "SCORE {:<28} legacy={}/10 revised={}/10 ({})",
            self.os, self.legacy.points, self.revised.points, self.revised.verdict
        )
    }
}

/// Run the four mirror subtests on a client and score them both ways.
pub fn run_mirror_test(profile: OsProfile, poison: PoisonPolicy) -> ScoringResult {
    let mut tb = Testbed::build(TestbedConfig {
        poison,
        ..TestbedConfig::default()
    });
    let os = profile.name.clone();
    let id = tb.add_host(profile);
    tb.boot();
    let ds = tb.run_task(id, browse("ds.mirror.sc24"), 25);
    let v4 = tb.run_task(id, browse("ipv4.mirror.sc24"), 25);
    let v6 = tb.run_task(id, browse("ipv6.mirror.sc24"), 25);
    let mtu = tb.run_task(id, browse("mtu.mirror.sc24"), 25);
    let h = tb.host(id);
    let subtests = SubtestResults {
        dual_stack: conn_info(&ds),
        v4_only: conn_info(&v4),
        v6_only: conn_info(&v6),
        v6_mtu: conn_info(&mtu),
        client_v4_stack_off: h.v6only_mode || !h.profile.ipv4_enabled,
    };
    ScoringResult {
        os,
        legacy: score_legacy(&subtests),
        revised: score_rfc8925_aware(&subtests),
        subtests,
    }
}

/// Fig. 5: the IPv6-disabled Windows 10 client under wildcard-A poisoning
/// erroneously scores 10/10 with the legacy logic.
pub fn fig5_erroneous_score() -> ScoringResult {
    run_mirror_test(
        OsProfile::windows_10_v6_disabled(),
        TestbedConfig::default().poison,
    )
}

// ---------------------------------------------------------------------
// FIG 6 — the Nintendo Switch intervention and its escape hatch
// ---------------------------------------------------------------------

/// Result of the Fig. 6 reproduction.
#[derive(Debug)]
pub struct Fig6Result {
    /// Browse outcome before any user meddling.
    pub intervened: TaskOutcome,
    /// The intervention page body (for display).
    pub page_excerpt: String,
    /// Browse outcome after overriding DNS to a known-good server.
    pub after_override: TaskOutcome,
}

/// Fig. 6: the v4-only Switch lands on the explanation page; changing the
/// DNS resolver to a known-good server restores IPv4 internet.
pub fn fig6_switch_intervention() -> Fig6Result {
    let mut tb = Testbed::paper_default();
    let id = tb.add_host(OsProfile::nintendo_switch());
    tb.boot();
    let intervened = tb.run_task(id, browse("sc24.supercomputing.org"), 25);
    let page_excerpt = match &intervened {
        TaskOutcome::HttpOk { body, .. } => body
            .lines()
            .find(|l| l.contains("IPv6"))
            .unwrap_or_default()
            .to_string(),
        _ => String::new(),
    };
    // The user types a public resolver into the console's network settings.
    tb.host(id).dns_override = Some(IpAddr::V4(addrs::PUBLIC_DNS_V4.parse().expect("static")));
    let after_override = tb.run_task(id, browse("sc24.supercomputing.org"), 25);
    Fig6Result {
        intervened,
        page_excerpt,
        after_override,
    }
}

impl Fig6Result {
    /// Paper-style row.
    pub fn render(&self) -> String {
        format!(
            "FIG6 switch: intervened-peer={:?} page={:?} after-dns-override-peer={:?}",
            self.intervened.peer(),
            self.page_excerpt,
            self.after_override.peer()
        )
    }
}

// ---------------------------------------------------------------------
// FIG 7 — Windows XP through NAT64/DNS64 via the IPv4 resolver
// ---------------------------------------------------------------------

/// Result of the Fig. 7 reproduction.
#[derive(Debug)]
pub struct Fig7Result {
    /// Browse of the v4-only conference site.
    pub browse_sc24: TaskOutcome,
    /// Ping of the v4-only conference site (expected via 64:ff9b::).
    pub ping_sc24: TaskOutcome,
    /// Ping of dual-stack ip6.me (expected via its native AAAA).
    pub ping_ip6me: TaskOutcome,
    /// Queries the client sent over IPv4 transport.
    pub dns_via_v4: u64,
    /// Queries the client sent over IPv6 transport (expected 0 for XP).
    pub dns_via_v6: u64,
}

/// Fig. 7: Windows XP (no IPv6 DNS transport) still operates IPv6-only-ish,
/// because the poisoned IPv4 resolver forwards AAAA queries to the DNS64.
pub fn fig7_winxp_nat64() -> Fig7Result {
    let mut tb = Testbed::paper_default();
    let id = tb.add_host(OsProfile::windows_xp());
    tb.boot();
    let browse_sc24 = tb.run_task(id, browse("sc24.supercomputing.org"), 25);
    let ping_sc24 = tb.run_task(
        id,
        AppTask::Ping {
            name: "sc24.supercomputing.org".parse().expect("static"),
        },
        25,
    );
    let ping_ip6me = tb.run_task(
        id,
        AppTask::Ping {
            name: "ip6.me".parse().expect("static"),
        },
        25,
    );
    let h = tb.host(id);
    Fig7Result {
        browse_sc24,
        ping_sc24,
        ping_ip6me,
        dns_via_v4: h.dns_via_v4,
        dns_via_v6: h.dns_via_v6,
    }
}

impl Fig7Result {
    /// Paper-style row.
    pub fn render(&self) -> String {
        format!(
            "FIG7 winxp: browse-sc24={:?} ping-sc24={:?} ping-ip6me={:?} dns(v4={},v6={})",
            self.browse_sc24.peer(),
            self.ping_sc24.peer(),
            self.ping_ip6me.peer(),
            self.dns_via_v4,
            self.dns_via_v6
        )
    }
}

// ---------------------------------------------------------------------
// FIG 8 — VPN split tunnel vs further IPv4 restriction
// ---------------------------------------------------------------------

/// Result of the Fig. 8 reproduction.
#[derive(Debug)]
pub struct Fig8Result {
    /// Was IPv4 internet blocked?
    pub v4_blocked: bool,
    /// Reaching the split-tunnelled VTC provider (direct IPv4).
    pub vtc_direct: TaskOutcome,
    /// Reaching a tunneled destination (via the concentrator).
    pub tunneled: TaskOutcome,
}

/// Fig. 8: with IPv4 internet intact, the split-tunnelled VTC works; if the
/// testbed further restricts IPv4, both the direct VTC path and the
/// IPv4-only tunnel break.
pub fn fig8_vpn_split_tunnel(v4_blocked: bool) -> Fig8Result {
    let mut tb = Testbed::build(TestbedConfig {
        block_v4_internet: v4_blocked,
        ..TestbedConfig::default()
    });
    let id = tb.add_host(OsProfile::windows_10());
    tb.boot();
    tb.host(id).vpn = Some(VpnConfig::argonne(
        addrs::VPN_V4.parse().expect("static"),
        format!("{}/32", addrs::VTC_V4).parse().expect("static"),
    ));
    let vtc_direct = tb.run_task(
        id,
        AppTask::VpnReach {
            addr: addrs::VTC_V4.parse().expect("static"),
            port: 443,
        },
        25,
    );
    let tunneled = tb.run_task(
        id,
        AppTask::VpnReach {
            addr: "203.0.113.99".parse().expect("static"),
            port: 443,
        },
        25,
    );
    Fig8Result {
        v4_blocked,
        vtc_direct,
        tunneled,
    }
}

impl Fig8Result {
    /// Paper-style row.
    pub fn render(&self) -> String {
        format!(
            "FIG8 v4-blocked={} vtc-direct-ok={} tunneled-ok={}",
            self.v4_blocked,
            self.vtc_direct.is_success(),
            self.tunneled.is_success()
        )
    }
}

// ---------------------------------------------------------------------
// FIG 9 / ABL-1 — non-existent A answers vs RPZ
// ---------------------------------------------------------------------

/// Result of the Fig. 9 reproduction.
#[derive(Debug)]
pub struct Fig9Result {
    /// Policy under test.
    pub policy: &'static str,
    /// nslookup outcome (suffix-first search, A query).
    pub nslookup: TaskOutcome,
    /// ping outcome (AAAA path).
    pub ping: TaskOutcome,
}

/// Fig. 9: under wildcard-A the suffixed non-existent name gets an answer;
/// under the conclusion's RPZ policy it stays NXDOMAIN and the real name
/// answers. Either way the AAAA path works.
pub fn fig9_poisoned_nxdomain(policy: PoisonPolicy) -> Fig9Result {
    let policy_name = match policy {
        PoisonPolicy::WildcardA { .. } => "wildcard-a",
        PoisonPolicy::ResponsePolicyZone { .. } => "rpz",
        PoisonPolicy::Off => "off",
    };
    let mut tb = Testbed::build(TestbedConfig {
        poison: policy,
        ..TestbedConfig::default()
    });
    // Windows 11 behaviour: DHCPv4 resolver preferred — so the poisoned
    // server is actually consulted (Fig. 9's client).
    let id = tb.add_host(OsProfile::windows_11());
    tb.boot();
    let nslookup = tb.run_task(
        id,
        AppTask::Nslookup {
            name: "vpn.anl.gov".parse().expect("static"),
            rtype: RType::A,
        },
        25,
    );
    let ping = tb.run_task(
        id,
        AppTask::Ping {
            name: "vpn.anl.gov".parse().expect("static"),
        },
        25,
    );
    Fig9Result {
        policy: policy_name,
        nslookup,
        ping,
    }
}

impl Fig9Result {
    /// Paper-style row.
    pub fn render(&self) -> String {
        let ns = match &self.nslookup {
            TaskOutcome::DnsAnswer {
                answered_name,
                records,
            } => format!(
                "{} -> {:?}",
                answered_name,
                records.first().map(|r| &r.data)
            ),
            other => format!("{other:?}"),
        };
        format!(
            "FIG9 policy={} nslookup=[{}] ping-peer={:?}",
            self.policy,
            ns,
            self.ping.peer()
        )
    }
}

// ---------------------------------------------------------------------
// FIG 10 — resolver preference determines poisoning exposure
// ---------------------------------------------------------------------

/// One OS row of the Fig. 10 sweep.
#[derive(Debug)]
pub struct Fig10Row {
    /// OS name.
    pub os: String,
    /// DNS queries over IPv6 transport.
    pub dns_via_v6: u64,
    /// DNS queries over IPv4 transport.
    pub dns_via_v4: u64,
    /// A queries the poisoner intercepted for this client.
    pub poisoned_a_answers: u64,
    /// Browse outcome of a dual-stack site.
    pub browse: TaskOutcome,
}

impl Fig10Row {
    /// Paper-style row.
    pub fn render(&self) -> String {
        format!(
            "FIG10 {:<28} dns(v6={},v4={}) poisoned-a={} browse-peer={:?}",
            self.os,
            self.dns_via_v6,
            self.dns_via_v4,
            self.poisoned_a_answers,
            self.browse.peer()
        )
    }
}

/// Fig. 10: Win10/Linux (RDNSS-first) never touch the poisoned resolver;
/// Win11/XP (DHCPv4 resolver) do, yet dual-stack browsing still lands on
/// the genuine AAAA.
pub fn fig10_resolver_preference() -> Vec<Fig10Row> {
    let mut rows = Vec::new();
    for profile in [
        OsProfile::windows_10(),
        OsProfile::linux(),
        OsProfile::windows_11(),
        OsProfile::windows_xp(),
    ] {
        let mut tb = Testbed::paper_default();
        let os = profile.name.clone();
        let id = tb.add_host(profile);
        tb.boot();
        let before = tb.pi_server().poisoned.poisoned_count;
        let browse_outcome = tb.run_task(id, browse("ip6.me"), 25);
        let poisoned = tb.pi_server().poisoned.poisoned_count - before;
        let h = tb.host(id);
        rows.push(Fig10Row {
            os,
            dns_via_v6: h.dns_via_v6,
            dns_via_v4: h.dns_via_v4,
            poisoned_a_answers: poisoned,
            browse: browse_outcome,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// FIG 11 — VPN client scores 0/10 on the mirror
// ---------------------------------------------------------------------

/// Result of the Fig. 11 reproduction.
#[derive(Debug)]
pub struct Fig11Result {
    /// The tunnel itself connects (the VPN is "working").
    pub tunnel_up: bool,
    /// Per-subtest results as seen through the tunnel policy.
    pub subtests: SubtestResults,
    /// Legacy score.
    pub legacy: Score,
    /// Revised score.
    pub revised: Score,
}

/// Fig. 11: an Argonne-style VPN client on the v6 wireless: the tunnel is
/// IPv4-only and test traffic is not split-tunnelled, so every subtest
/// fails — 0/10 despite "working" VPN.
pub fn fig11_vpn_zero_score() -> Fig11Result {
    let mut tb = Testbed::paper_default();
    let id = tb.add_host(OsProfile::windows_10());
    tb.boot();
    let vpn = VpnConfig::argonne(
        addrs::VPN_V4.parse().expect("static"),
        format!("{}/32", addrs::VTC_V4).parse().expect("static"),
    );
    tb.host(id).vpn = Some(vpn.clone());
    // The tunnel connects fine over the testbed's IPv4.
    let tunnel = tb.run_task(
        id,
        AppTask::VpnReach {
            addr: "203.0.113.99".parse().expect("static"),
            port: 443,
        },
        25,
    );
    // All mirror test traffic rides the v4-only tunnel; the mirror is not
    // split-tunnelled and the tunnel carries no IPv6 → every subtest fails.
    let mirror_v4: std::net::Ipv4Addr = addrs::MIRROR_V4.parse().expect("static");
    let subtests = if vpn.goes_direct(mirror_v4) || vpn.tunnel_carries_v6 {
        unreachable!("paper config tunnels the mirror over v4-only")
    } else {
        SubtestResults {
            client_v4_stack_off: false,
            ..Default::default()
        }
    };
    Fig11Result {
        tunnel_up: tunnel.is_success(),
        legacy: score_legacy(&subtests),
        revised: score_rfc8925_aware(&subtests),
        subtests,
    }
}

impl Fig11Result {
    /// Paper-style row.
    pub fn render(&self) -> String {
        format!(
            "FIG11 vpn tunnel-up={} legacy={}/10 revised={}/10",
            self.tunnel_up, self.legacy.points, self.revised.points
        )
    }
}

// ---------------------------------------------------------------------
// TBL-A — full device matrix; TBL-B — census accuracy
// ---------------------------------------------------------------------

/// TBL-A: every Section V profile through the full testbed.
pub fn tbl_a_device_matrix() -> Vec<MatrixRow> {
    matrix_for(OsProfile::all_paper_profiles())
}

/// Result of the census comparison.
#[derive(Debug)]
pub struct Fig2Census {
    /// Aggregate counts.
    pub summary: CensusSummary,
    /// The over-count factor naive/accurate.
    pub overcount: f64,
}

/// TBL-B: a realistic show-floor population; SC23-naive vs SC24-accurate
/// IPv6-only counts.
pub fn tbl_b_census() -> Fig2Census {
    let mut tb = Testbed::paper_default();
    for p in [
        OsProfile::macos(),
        OsProfile::macos(),
        OsProfile::ios(),
        OsProfile::ios(),
        OsProfile::android(),
        OsProfile::android(),
        OsProfile::windows_10(),
        OsProfile::windows_10(),
        OsProfile::windows_10(),
        OsProfile::windows_11(),
        OsProfile::windows_11_rfc8925(),
        OsProfile::linux(),
        OsProfile::windows_xp(),
        OsProfile::nintendo_switch(),
        OsProfile::legacy_printer(),
        OsProfile::windows_10_v6_disabled(),
    ] {
        tb.add_host(p);
    }
    tb.boot();
    tb.run_secs(10);
    let (_, summary) = census(&mut tb);
    let overcount = if summary.accurate_v6only == 0 {
        f64::INFINITY
    } else {
        summary.naive_v6only as f64 / summary.accurate_v6only as f64
    };
    Fig2Census { summary, overcount }
}

impl Fig2Census {
    /// Paper-style row.
    pub fn render(&self) -> String {
        format!(
            "TBL-B census: associated={} naive-v6only={} accurate-v6only={} with-v4-path={} overcount={:.2}x",
            self.summary.associated,
            self.summary.naive_v6only,
            self.summary.accurate_v6only,
            self.summary.with_v4_path,
            self.overcount
        )
    }
}
