//! # v6testbed — the paper's IPv6-only testbed, assembled
//!
//! This is the primary contribution crate: it composes the substrates
//! (`v6sim`, `v6dns`, `v6dhcp`, `v6xlat`, `v6host`, `v6portal`) into the
//! paper's Figure 4 topology and exposes every experiment from the
//! evaluation as a callable function.
//!
//! * [`zones`] — the simulated internet's DNS content
//! * [`nodes`] — the Raspberry Pi server (healthy DNS64 + poisoned
//!   dnsmasq + DHCP w/ option 108), the internet router, public DNS
//! * [`topology`] — the [`topology::Testbed`] builder (managed switch,
//!   5G gateway, portals, clients)
//! * [`census`](mod@census) — IPv6-only client counting, naive (SC23) vs accurate
//!   (SC24) methodology
//! * [`experiments`] — one function per paper figure/table (see DESIGN.md's
//!   experiment index)
//! * [`scenario`] — the Fig. 4 matrix as enumerable, seedable
//!   [`scenario::Scenario`] cells for the `v6fleet` runner
//! * [`arena`] — warm-cell execution: per-worker reusable testbeds,
//!   recycled between cells instead of rebuilt, byte-identical to cold

#![warn(missing_docs)]

pub mod arena;
pub mod census;
pub mod experiments;
pub mod nodes;
pub mod scenario;
pub mod topology;
pub mod zones;

pub use arena::CellArena;
pub use census::{census, CensusEntry, CensusSummary};
pub use scenario::{
    os_profiles, CellObservation, CellSpec, OsProfileId, PathFamily, PoisonVariant, Scenario,
    ScenarioResult, TopologyVariant, Verdict,
};
pub use topology::{Testbed, TestbedConfig};
/// Re-export of the engine's trace verbosity knob, so fleet callers can
/// pick a mode without a direct `v6sim` dependency.
pub use v6sim::engine::TraceMode;
