//! Infrastructure nodes: the Raspberry Pi server, the internet router, and
//! the public recursive resolver.

use crate::zones::internet_dns;
use std::any::Any;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use v6addr::prefix::{Ipv4Prefix, Ipv6Prefix};
use v6dhcp::server::{DhcpServer, ServerConfig};
use v6dns::codec::Message as DnsMessage;
use v6dns::dns64::Dns64;
use v6dns::edns;
use v6dns::poison::{PoisonPolicy, PoisonedResolver};
use v6dns::server::{CachingResolver, GlobalDns, Resolver};
use v6sim::engine::{Ctx, Node};
use v6sim::tcp::TcpEndpoint;
use v6wire::arp::{ArpOp, ArpPacket};
use v6wire::ethernet::{EtherType, EthernetFrame};
use v6wire::fasthash::FastMap;
use v6wire::icmpv6::Icmpv6Message;
use v6wire::ipv4::{proto, Ipv4Packet};
use v6wire::ipv6::Ipv6Packet;
use v6wire::mac::MacAddr;
use v6wire::ndp::{NdpOption, NeighborAdvertisement};
use v6wire::packet::{build_arp, build_icmpv6};
use v6wire::tcp::TcpSegment;
use v6wire::udp::{port, UdpDatagram};
use v6wire::view::{FrameView, Icmp6View, L3View, L4View};

/// The healthy DNS64 resolver stack the Pi serves over IPv6.
pub type HealthyResolver = CachingResolver<Dns64<GlobalDns>>;
/// The poisoned resolver stack the Pi serves over IPv4 (dnsmasq-style).
pub type PoisonResolver = PoisonedResolver<CachingResolver<Dns64<GlobalDns>>>;

/// One DNS-over-TCP connection being served (RFC 1035 §4.2.2: the
/// fallback transport stubs retry over after a TC-bit truncation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DnsFlowId {
    local: IpAddr,
    remote: IpAddr,
    rport: u16,
}

struct DnsServerFlow {
    ep: TcpEndpoint,
    responded: bool,
}

/// The Raspberry Pi server from Fig. 4: healthy DNS64 on `fd00:976a::9`,
/// poisoned dnsmasq on its IPv4 address, and a DHCPv4 server with option
/// 108. ("A Raspberry Pi server running BIND9 DNS64 services was deployed
/// with an address of fd00:976a::9" + the dnsmasq two-liner from §VI.)
pub struct PiServer {
    name: String,
    /// Server MAC.
    pub mac: MacAddr,
    /// Healthy DNS64 address (ULA, reachable on-link via the switch RA).
    pub v6: Ipv6Addr,
    /// Poisoned dnsmasq address (what DHCP option 6 advertises).
    pub v4: Ipv4Addr,
    /// The healthy DNS64 resolver (IPv6 service).
    pub healthy: HealthyResolver,
    /// The poisoned resolver (IPv4 service).
    pub poisoned: PoisonResolver,
    /// DHCPv4 server with option 108 (None disables — ABL topologies).
    pub dhcp: Option<DhcpServer>,
    /// Queries served on the v6 (healthy) side.
    pub v6_queries: u64,
    /// Queries served on the v4 (poisoned) side.
    pub v4_queries: u64,
    /// Failure injection: `false` simulates the Pi crashing (no responses
    /// of any kind). The testbed keeps running; clients discover the loss
    /// through timeouts.
    pub enabled: bool,
    /// Queries served over TCP (truncation fallback).
    pub tcp_queries: u64,
    tcp_flows: FastMap<DnsFlowId, DnsServerFlow>,
}

impl PiServer {
    /// Build with the given poisoning policy.
    pub fn new(policy: PoisonPolicy, with_dhcp: bool) -> PiServer {
        let v4: Ipv4Addr = "192.168.12.250".parse().expect("static ip");
        PiServer {
            name: "raspberry-pi".into(),
            mac: MacAddr::new([0x02, 0x91, 0, 0, 0, 0x09]),
            v6: "fd00:976a::9".parse().expect("static ip"),
            v4,
            healthy: CachingResolver::new(Dns64::well_known(internet_dns())),
            poisoned: PoisonedResolver::new(
                CachingResolver::new(Dns64::well_known(internet_dns())),
                policy,
            ),
            dhcp: with_dhcp.then(|| DhcpServer::new(ServerConfig::testbed(v4))),
            v6_queries: 0,
            v4_queries: 0,
            enabled: true,
            tcp_queries: 0,
            tcp_flows: FastMap::default(),
        }
    }

    /// Point both resolver stacks at a different global DNS database —
    /// the broken-delegation fault swaps in the delegated tree resolved
    /// iteratively over IPv6 only. [`PiServer::reset`] restores the flat
    /// database, so warm-cell recycling stays equivalent to a cold build.
    pub fn install_global_dns(&mut self, g: GlobalDns) {
        *self.healthy.upstream_mut().upstream_mut() = g.clone();
        *self.poisoned.upstream_mut().upstream_mut().upstream_mut() = g;
    }

    /// Restore the post-construction state: both resolver stacks reset
    /// layer by layer (cache, DNS64 counter, poison counters, zone query
    /// counter), the DHCP lease table flushed, query counters zeroed,
    /// and the failure-injection switch re-armed. Addressing and the
    /// poison policy are configuration and survive — the warm-cell
    /// arena keys its slots on them.
    pub fn reset(&mut self) {
        self.healthy.reset();
        self.healthy.upstream_mut().reset();
        self.poisoned.reset();
        let cache = self.poisoned.upstream_mut();
        cache.reset();
        cache.upstream_mut().reset();
        // A fault run may have swapped in the delegated tree via
        // [`PiServer::install_global_dns`]; reinstall the flat database
        // (fresh counters included) so the recycled Pi matches a cold
        // build byte-for-byte.
        self.install_global_dns(internet_dns());
        if let Some(dhcp) = &mut self.dhcp {
            dhcp.reset();
        }
        self.v6_queries = 0;
        self.v4_queries = 0;
        self.enabled = true;
        self.tcp_queries = 0;
        self.tcp_flows.clear();
    }

    /// Resolve `msg` and shape the response. `udp_limit` is the transport
    /// ceiling for a UDP reply (`None` over TCP): a response that would
    /// not fit is emptied and flagged TC (RFC 6891 §7) so the stub can
    /// retry over TCP. A classified resolution failure travels back as an
    /// RFC 8914 Extended DNS Error in the additional section.
    fn answer(
        resolver: &mut dyn Resolver,
        msg: &DnsMessage,
        now: u64,
        udp_limit: Option<usize>,
    ) -> DnsMessage {
        let q = msg.questions[0].clone();
        let ans = resolver.resolve(&q, now);
        let mut resp = DnsMessage::response_to(msg, ans.rcode);
        resp.answers = ans.records;
        if let Some(soa) = ans.soa {
            resp.authorities.push(soa);
        }
        if let Some(reason) = ans.reason {
            resp.additionals.push(edns::opt_record(
                edns::DEFAULT_PAYLOAD_SIZE,
                &[edns::ede_option(reason.ede_code(), reason.label())],
            ));
        }
        if let Some(limit) = udp_limit {
            if resp.encode().len() > limit {
                resp.truncated = true;
                resp.answers.clear();
                resp.authorities.clear();
            }
        }
        resp
    }

    /// The UDP size ceiling a query grants its response: the EDNS0
    /// advertised payload size, or the classic 512-octet limit when the
    /// query carries no OPT.
    fn udp_limit(msg: &DnsMessage) -> usize {
        edns::advertised_payload_size(msg).unwrap_or(edns::CLASSIC_UDP_LIMIT)
    }

    fn on_tcp_dns(
        &mut self,
        local: IpAddr,
        remote: IpAddr,
        seg: TcpSegment,
        reply_mac: MacAddr,
        now: u64,
        ctx: &mut Ctx,
    ) {
        let id = DnsFlowId {
            local,
            remote,
            rport: seg.src_port,
        };
        let flow = self.tcp_flows.entry(id).or_insert_with(|| DnsServerFlow {
            ep: TcpEndpoint::listen(port::DNS),
            responded: false,
        });
        let replies = flow.ep.on_segment(&seg);
        let closed = flow.ep.is_closed();
        for r in replies {
            self.send_tcp_segment(id, r, reply_mac, ctx);
        }
        self.serve_tcp_dns(id, reply_mac, now, ctx);
        if closed {
            self.tcp_flows.remove(&id);
        }
    }

    /// Answer the two-octet-length-prefixed query on an established TCP
    /// connection (RFC 1035 §4.2.2), then close: one query per connection,
    /// like the stub's fallback uses it.
    fn serve_tcp_dns(&mut self, id: DnsFlowId, reply_mac: MacAddr, now: u64, ctx: &mut Ctx) {
        let Some(flow) = self.tcp_flows.get(&id) else {
            return;
        };
        if flow.responded || !flow.ep.is_established() {
            return;
        }
        let buf = flow.ep.received.clone();
        if buf.len() < 2 {
            return;
        }
        let want = u16::from_be_bytes([buf[0], buf[1]]) as usize;
        if buf.len() < 2 + want {
            return; // still streaming in
        }
        let Ok(msg) = DnsMessage::decode(&buf[2..2 + want]) else {
            self.tcp_flows.remove(&id);
            return;
        };
        self.tcp_queries += 1;
        let resp = match id.local {
            IpAddr::V6(_) => Self::answer(&mut self.healthy, &msg, now, None),
            IpAddr::V4(_) => Self::answer(&mut self.poisoned, &msg, now, None),
        };
        let payload = resp.encode();
        let mut framed = (payload.len() as u16).to_be_bytes().to_vec();
        framed.extend_from_slice(&payload);
        let flow = self.tcp_flows.get_mut(&id).expect("present");
        flow.responded = true;
        let mut segs = flow.ep.send(&framed);
        segs.extend(flow.ep.close());
        for s in segs {
            self.send_tcp_segment(id, s, reply_mac, ctx);
        }
    }

    fn send_tcp_segment(&self, id: DnsFlowId, seg: TcpSegment, dst_mac: MacAddr, ctx: &mut Ctx) {
        match (id.local, id.remote) {
            (IpAddr::V6(l), IpAddr::V6(r)) => {
                let pkt = Ipv6Packet::new(l, r, proto::TCP, seg.encode_v6(l, r));
                let frame = EthernetFrame::new(dst_mac, self.mac, EtherType::Ipv6, pkt.encode());
                ctx.send(0, frame.encode());
            }
            (IpAddr::V4(l), IpAddr::V4(r)) => {
                let pkt = Ipv4Packet::new(l, r, proto::TCP, seg.encode_v4(l, r));
                let frame = EthernetFrame::new(dst_mac, self.mac, EtherType::Ipv4, pkt.encode());
                ctx.send(0, frame.encode());
            }
            _ => {}
        }
    }
}

impl Node for PiServer {
    fn name(&self) -> &str {
        &self.name
    }

    fn device_metrics(&self) -> v6wire::metrics::Metrics {
        let mut m = v6wire::metrics::Metrics::new();
        m.add("v6_queries", self.v6_queries);
        m.add("v4_queries", self.v4_queries);
        m.add("tcp_queries", self.tcp_queries);
        m.merge_namespaced("dns64", &self.healthy.metrics());
        m.merge_namespaced("dnsmasq", &self.poisoned.metrics());
        if let Some(dhcp) = &self.dhcp {
            m.add("dhcp.offers_with_108", dhcp.offers_with_108);
            m.add("dhcp.offers_plain", dhcp.offers_plain);
        }
        m
    }

    fn on_frame(&mut self, _port: u32, raw: &[u8], ctx: &mut Ctx) {
        if !self.enabled {
            return; // crashed (failure-injection experiments)
        }
        // Zero-copy view: the server only reads headers and borrows the
        // UDP payload for DNS/DHCP decoding (same accept/reject behaviour
        // as the owned parser).
        let Ok(parsed) = FrameView::parse(raw) else {
            return;
        };
        let now = ctx.now.as_secs();
        match (&parsed.l3, &parsed.l4) {
            (L3View::V6(ip), L4View::Icmp6(Icmp6View::NeighborSolicitation { target, .. }))
                if *target == self.v6 =>
            {
                let na = Icmpv6Message::NeighborAdvertisement(NeighborAdvertisement {
                    router: false,
                    solicited: true,
                    override_flag: true,
                    target: *target,
                    options: vec![NdpOption::TargetLinkLayer(self.mac)],
                });
                ctx.send(
                    0,
                    build_icmpv6(self.mac, parsed.eth.src, *target, ip.src, &na),
                );
            }
            (L3View::V6(ip), L4View::Udp(udp))
                if ip.dst == self.v6 && udp.dst_port == port::DNS =>
            {
                if let Ok(msg) = DnsMessage::decode(udp.payload) {
                    self.v6_queries += 1;
                    let limit = Self::udp_limit(&msg);
                    let resp = Self::answer(&mut self.healthy, &msg, now, Some(limit));
                    let d = UdpDatagram::new(port::DNS, udp.src_port, resp.encode());
                    ctx.send(
                        0,
                        v6wire::packet::build_udp_v6(self.mac, parsed.eth.src, self.v6, ip.src, &d),
                    );
                }
            }
            (L3View::V4(ip), L4View::Udp(udp))
                if ip.dst == self.v4 && udp.dst_port == port::DNS =>
            {
                if let Ok(msg) = DnsMessage::decode(udp.payload) {
                    self.v4_queries += 1;
                    let limit = Self::udp_limit(&msg);
                    let resp = Self::answer(&mut self.poisoned, &msg, now, Some(limit));
                    let d = UdpDatagram::new(port::DNS, udp.src_port, resp.encode());
                    ctx.send(
                        0,
                        v6wire::packet::build_udp_v4(self.mac, parsed.eth.src, self.v4, ip.src, &d),
                    );
                }
            }
            (L3View::V4(_), L4View::Udp(udp)) if udp.dst_port == port::DHCP_SERVER => {
                if let Some(dhcp) = &mut self.dhcp {
                    if let Ok(msg) = v6dhcp::codec::DhcpMessage::decode(udp.payload) {
                        if let Some(reply) = dhcp.handle(&msg, now) {
                            let d = UdpDatagram::new(
                                port::DHCP_SERVER,
                                port::DHCP_CLIENT,
                                reply.encode(),
                            );
                            let frame = v6wire::packet::build_udp_v4(
                                self.mac,
                                msg.chaddr,
                                dhcp.config.server_id,
                                Ipv4Addr::BROADCAST,
                                &d,
                            );
                            ctx.send(0, frame);
                        }
                    }
                }
            }
            (L3View::V6(ip), L4View::Tcp(seg))
                if ip.dst == self.v6 && seg.dst_port == port::DNS =>
            {
                self.on_tcp_dns(
                    IpAddr::V6(ip.dst),
                    IpAddr::V6(ip.src),
                    seg.to_segment(),
                    parsed.eth.src,
                    now,
                    ctx,
                );
            }
            (L3View::V4(ip), L4View::Tcp(seg))
                if ip.dst == self.v4 && seg.dst_port == port::DNS =>
            {
                self.on_tcp_dns(
                    IpAddr::V4(ip.dst),
                    IpAddr::V4(ip.src),
                    seg.to_segment(),
                    parsed.eth.src,
                    now,
                    ctx,
                );
            }
            (L3View::Arp(arp), _) if arp.op == ArpOp::Request && arp.target_ip == self.v4 => {
                let reply = ArpPacket::reply_to(arp, self.mac);
                ctx.send(0, build_arp(self.mac, arp.sender_mac, &reply));
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A public recursive resolver on the simulated internet (9.9.9.9) — the
/// known-good server the Nintendo Switch user configures in Fig. 6.
pub struct PublicDns {
    name: String,
    /// Node MAC (p2p WAN links don't care).
    pub mac: MacAddr,
    /// Service address.
    pub v4: Ipv4Addr,
    resolver: CachingResolver<GlobalDns>,
    /// Queries served.
    pub queries: u64,
}

impl PublicDns {
    /// A resolver over the standard internet zones.
    pub fn new() -> PublicDns {
        PublicDns {
            name: "public-dns".into(),
            mac: MacAddr::new([0x02, 0x99, 0, 0, 0, 0x09]),
            v4: crate::zones::addrs::PUBLIC_DNS_V4
                .parse()
                .expect("static ip"),
            resolver: CachingResolver::new(internet_dns()),
            queries: 0,
        }
    }

    /// Restore the post-construction state: cache flushed, counters
    /// zeroed (warm-cell arena reuse).
    pub fn reset(&mut self) {
        self.resolver.reset();
        self.resolver.upstream_mut().reset();
        self.queries = 0;
    }
}

impl Default for PublicDns {
    fn default() -> Self {
        Self::new()
    }
}

impl Node for PublicDns {
    fn name(&self) -> &str {
        &self.name
    }

    fn device_metrics(&self) -> v6wire::metrics::Metrics {
        let mut m = v6wire::metrics::Metrics::new();
        m.add("queries", self.queries);
        m.merge_namespaced("cache", &self.resolver.metrics());
        m
    }

    fn on_frame(&mut self, _port: u32, raw: &[u8], ctx: &mut Ctx) {
        let Ok(parsed) = FrameView::parse(raw) else {
            return;
        };
        if let (L3View::V4(ip), L4View::Udp(udp)) = (&parsed.l3, &parsed.l4) {
            if ip.dst == self.v4 && udp.dst_port == port::DNS {
                if let Ok(msg) = DnsMessage::decode(udp.payload) {
                    self.queries += 1;
                    let limit = PiServer::udp_limit(&msg);
                    let resp =
                        PiServer::answer(&mut self.resolver, &msg, ctx.now.as_secs(), Some(limit));
                    let d = UdpDatagram::new(port::DNS, udp.src_port, resp.encode());
                    ctx.send(
                        0,
                        v6wire::packet::build_udp_v4(self.mac, parsed.eth.src, self.v4, ip.src, &d),
                    );
                }
            }
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The internet core: a static longest-prefix router joining the gateway's
/// WAN side with the service nodes. Transparent at L3 (the gateway already
/// spent the hop).
pub struct InternetRouter {
    name: String,
    v4_routes: Vec<(Ipv4Prefix, u32)>,
    v6_routes: Vec<(Ipv6Prefix, u32)>,
    /// Frames forwarded.
    pub forwarded: u64,
    /// Frames with no route.
    pub dropped: u64,
}

impl InternetRouter {
    /// An empty router.
    pub fn new(name: impl Into<String>) -> InternetRouter {
        InternetRouter {
            name: name.into(),
            v4_routes: Vec::new(),
            v6_routes: Vec::new(),
            forwarded: 0,
            dropped: 0,
        }
    }

    /// Add an IPv4 route.
    pub fn route_v4(&mut self, prefix: &str, out: u32) -> &mut Self {
        self.v4_routes
            .push((prefix.parse().expect("static prefix"), out));
        self
    }

    /// Add an IPv6 route.
    pub fn route_v6(&mut self, prefix: &str, out: u32) -> &mut Self {
        self.v6_routes
            .push((prefix.parse().expect("static prefix"), out));
        self
    }

    /// Zero the forwarding counters; the route tables are configuration
    /// and survive (warm-cell arena reuse).
    pub fn reset(&mut self) {
        self.forwarded = 0;
        self.dropped = 0;
    }
}

impl Node for InternetRouter {
    fn name(&self) -> &str {
        &self.name
    }

    fn device_metrics(&self) -> v6wire::metrics::Metrics {
        let mut m = v6wire::metrics::Metrics::new();
        m.add("forwarded", self.forwarded);
        m.add("dropped_no_route", self.dropped);
        m
    }

    fn on_frame(&mut self, ingress: u32, raw: &[u8], ctx: &mut Ctx) {
        let Ok(parsed) = FrameView::parse(raw) else {
            return;
        };
        let out = match &parsed.l3 {
            L3View::V4(ip) => self
                .v4_routes
                .iter()
                .filter(|(p, _)| p.contains(ip.dst))
                .max_by_key(|(p, _)| p.len())
                .map(|(_, o)| *o),
            L3View::V6(ip) => self
                .v6_routes
                .iter()
                .filter(|(p, _)| p.contains(ip.dst))
                .max_by_key(|(p, _)| p.len())
                .map(|(_, o)| *o),
            _ => None,
        };
        match out {
            Some(o) if o != ingress => {
                self.forwarded += 1;
                ctx.send(o, raw.to_vec());
            }
            _ => self.dropped += 1,
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zones::delegated_internet_dns;
    use v6dns::codec::{Question, RData, RType, Rcode};
    use v6dns::server::ResolutionFailure;
    use v6dns::DnsName;

    fn n(s: &str) -> DnsName {
        s.parse().unwrap()
    }

    fn query(name: &str, rtype: RType) -> DnsMessage {
        DnsMessage::query(7, Question::new(n(name), rtype))
    }

    #[test]
    fn classified_failure_travels_as_ede() {
        let mut pi = PiServer::new(PoisonPolicy::Off, true);
        pi.install_global_dns(delegated_internet_dns());
        let q = query("sc24.supercomputing.org", RType::Aaaa);
        let resp = PiServer::answer(&mut pi.healthy, &q, 0, Some(PiServer::udp_limit(&q)));
        assert_eq!(resp.rcode, Rcode::ServFail);
        assert_eq!(
            edns::failure_of(&resp),
            Some(ResolutionFailure::NoAaaaGlue),
            "the stub learns *why*, not just SERVFAIL"
        );
    }

    #[test]
    fn reset_reinstalls_the_flat_database() {
        let mut pi = PiServer::new(PoisonPolicy::Off, true);
        pi.install_global_dns(delegated_internet_dns());
        pi.reset();
        let q = query("sc24.supercomputing.org", RType::Aaaa);
        let resp = PiServer::answer(&mut pi.healthy, &q, 0, Some(PiServer::udp_limit(&q)));
        // DNS64 synthesis works again: flat zones restored, warm cell
        // equivalent to a cold build.
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(resp
            .answers
            .iter()
            .any(|r| matches!(r.data, RData::Aaaa(_))));
    }

    #[test]
    fn oversize_udp_response_truncates_to_tc() {
        // A TXT record big enough to blow the classic 512-octet ceiling.
        let mut zone = v6dns::Zone::new(n("big.test"), 60);
        zone.add_str("@", 60, RData::Txt(vec!["x".repeat(200); 4]));
        let mut g = GlobalDns::new();
        g.add_zone(zone);
        let mut pi = PiServer::new(PoisonPolicy::Off, true);
        pi.install_global_dns(g);
        let q = query("big.test", RType::Txt);
        let resp = PiServer::answer(&mut pi.healthy, &q, 0, Some(PiServer::udp_limit(&q)));
        assert!(resp.truncated, "TC set");
        assert!(
            resp.answers.is_empty(),
            "truncated responses carry no answers"
        );
        assert!(resp.encode().len() <= edns::CLASSIC_UDP_LIMIT);

        // The same query with an EDNS0 advertisement fits untruncated.
        let mut q_edns = query("big.test", RType::Txt);
        q_edns
            .additionals
            .push(edns::opt_record(edns::DEFAULT_PAYLOAD_SIZE, &[]));
        let resp = PiServer::answer(
            &mut pi.healthy,
            &q_edns,
            0,
            Some(PiServer::udp_limit(&q_edns)),
        );
        assert!(!resp.truncated);
        assert!(!resp.answers.is_empty());

        // And over TCP there is no ceiling at all.
        let resp = PiServer::answer(&mut pi.healthy, &q, 0, None);
        assert!(!resp.truncated);
        assert!(!resp.answers.is_empty());
    }
}
