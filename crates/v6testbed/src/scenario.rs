//! Enumerable, seedable single-client runs — the unit of work for the
//! fleet runner (`v6fleet`).
//!
//! A [`Scenario`] names one cell of the paper's Fig. 4 evaluation space:
//! an OS profile, a topology variant (with or without the managed
//! switch + Raspberry Pi), an IPv4 DNS intervention policy, and an RNG
//! seed for the client. [`Scenario::run`] builds a fresh testbed, boots
//! the client, browses the IPv4-only conference site and dual-stack
//! ip6.me, and returns a plain-data [`ScenarioResult`]: verdict, census
//! row, full [`MetricsSnapshot`], and virtual-clock timing. Everything
//! in the result is `Clone + Eq`, so two runs of the same scenario can
//! be compared field-for-field — the property the fleet's determinism
//! tests rely on.

use crate::census::{census, CensusEntry};
use crate::topology::{Testbed, TestbedConfig};
use crate::zones::{addrs, delegated_internet_dns};
use std::net::IpAddr;
use std::sync::OnceLock;
use v6dns::poison::PoisonPolicy;
pub use v6dns::server::ResolutionFailure;
use v6host::profiles::OsProfile;
use v6host::tasks::{AppTask, TaskOutcome};
use v6sim::engine::TraceMode;
use v6sim::fault::{EndpointMatch, FaultPlan, Impairment, LinkFault, Outage};
use v6sim::metrics::MetricsSnapshot;
use v6sim::time::SimTime;

/// Which physical build of Fig. 4 the scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyVariant {
    /// The paper's production testbed: managed switch (RA injection +
    /// DHCP snooping) and the Raspberry Pi's DHCP server.
    PaperDefault,
    /// The Fig. 3 "before" condition: dumb switch, no Pi DHCP — clients
    /// see only the 5G gateway's broken announcements.
    RawGateway,
}

impl TopologyVariant {
    /// All variants, in matrix order.
    pub const ALL: [TopologyVariant; 2] =
        [TopologyVariant::PaperDefault, TopologyVariant::RawGateway];

    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TopologyVariant::PaperDefault => "paper",
            TopologyVariant::RawGateway => "raw-gw",
        }
    }
}

/// Which IPv4 DNS intervention the Pi's dnsmasq applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoisonVariant {
    /// No intervention (SC23 control condition).
    Off,
    /// dnsmasq `address=/#/…` wildcard-A (the paper's deployed config).
    WildcardA,
    /// The conclusion's BIND9 RPZ-style rewrite (existing names only).
    Rpz,
}

impl PoisonVariant {
    /// All variants, in matrix order.
    pub const ALL: [PoisonVariant; 3] = [
        PoisonVariant::Off,
        PoisonVariant::WildcardA,
        PoisonVariant::Rpz,
    ];

    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PoisonVariant::Off => "off",
            PoisonVariant::WildcardA => "wildcard-a",
            PoisonVariant::Rpz => "rpz",
        }
    }

    /// The concrete policy (interventions answer with ip6.me's address,
    /// as deployed).
    pub fn policy(self) -> PoisonPolicy {
        let answer = addrs::IP6ME_V4.parse().expect("static ip");
        match self {
            PoisonVariant::Off => PoisonPolicy::Off,
            PoisonVariant::WildcardA => PoisonPolicy::WildcardA { answer, ttl: 60 },
            PoisonVariant::Rpz => PoisonPolicy::ResponsePolicyZone { answer, ttl: 60 },
        }
    }
}

/// Which failure regime the scenario runs under — the fault dimension of
/// the evaluation matrix. `Clean` installs nothing and stays bit-identical
/// to the pre-fault testbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FaultVariant {
    /// Perfect network (the original matrix).
    #[default]
    Clean,
    /// The 5G uplink degrades: loss, latency, jitter, reordering,
    /// duplication, plus a mid-run link flap.
    LossyUplink,
    /// The Raspberry Pi (DNS64 + poisoned dnsmasq + DHCP) goes dark for a
    /// crash-and-restart window right as the browse workload starts.
    Dns64Outage,
    /// The carrier NAT64's translation table is already saturated by other
    /// subscribers: no new bindings, existing ones keep refreshing.
    Nat64Exhaustion,
    /// The global DNS is published as a *delegation tree* and the Pi's
    /// resolver walks it iteratively over IPv6 only — but the `org`
    /// parent's glue for `supercomputing.org` is A-only, so the poisoned
    /// and DNS64 paths both fail sc24 resolution with the classified
    /// reason `no-aaaa-glue` instead of a timeout.
    BrokenDelegation,
}

impl FaultVariant {
    /// All variants, in matrix order.
    pub const ALL: [FaultVariant; 5] = [
        FaultVariant::Clean,
        FaultVariant::LossyUplink,
        FaultVariant::Dns64Outage,
        FaultVariant::Nat64Exhaustion,
        FaultVariant::BrokenDelegation,
    ];

    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultVariant::Clean => "clean",
            FaultVariant::LossyUplink => "lossy-uplink",
            FaultVariant::Dns64Outage => "dns64-outage",
            FaultVariant::Nat64Exhaustion => "nat64-exhaustion",
            FaultVariant::BrokenDelegation => "broken-delegation",
        }
    }

    /// This variant's position in [`FaultVariant::ALL`] — the index the
    /// population census keys its fault-mix row by.
    pub fn index(self) -> usize {
        match self {
            FaultVariant::Clean => 0,
            FaultVariant::LossyUplink => 1,
            FaultVariant::Dns64Outage => 2,
            FaultVariant::Nat64Exhaustion => 3,
            FaultVariant::BrokenDelegation => 4,
        }
    }

    /// The seeded [`FaultPlan`] this variant installs (keyed to the
    /// testbed's node names). `Clean`, `Nat64Exhaustion` and
    /// `BrokenDelegation` return the no-op plan — those are device-state
    /// conditions, not link impairments.
    pub fn plan(self, seed: u64) -> FaultPlan {
        match self {
            FaultVariant::Clean
            | FaultVariant::Nat64Exhaustion
            | FaultVariant::BrokenDelegation => FaultPlan::default(),
            FaultVariant::LossyUplink => FaultPlan {
                seed,
                links: vec![LinkFault {
                    on: EndpointMatch::between("5g-gw", "internet"),
                    impairment: Impairment {
                        drop_per_mille: 25,
                        extra_latency_us: 20_000,
                        jitter_us: 15_000,
                        reorder_per_mille: 40,
                        reorder_window_us: 20_000,
                        duplicate_per_mille: 15,
                        ..Impairment::default()
                    },
                }],
                // A short flap while the browse workload is in flight.
                outages: vec![Outage {
                    on: EndpointMatch::between("5g-gw", "internet"),
                    start_us: 16_000_000,
                    end_us: 16_600_000,
                }],
            },
            FaultVariant::Dns64Outage => FaultPlan {
                seed,
                links: Vec::new(),
                // The Pi crashes exactly as the post-boot workload starts
                // (boot ends at 15 s) and is back 2.4 s later: long enough
                // that the fixed-timeout stub of old would have declared
                // DNS dead, short enough that backoff retransmission
                // recovers within the task deadline.
                outages: vec![Outage {
                    on: EndpointMatch::node("raspberry-pi"),
                    start_us: 15_000_000,
                    end_us: 17_400_000,
                }],
            },
        }
    }

    /// NAT64 binding cap this variant imposes on the gateway.
    pub fn nat64_binding_cap(self) -> Option<usize> {
        match self {
            FaultVariant::Nat64Exhaustion => Some(0),
            _ => None,
        }
    }
}

/// Index into the interned paper profile table ([`os_profiles`]).
///
/// Population-scale sampling draws millions of cells; interning the
/// eleven [`OsProfile`]s once and passing a two-byte id around makes a
/// sampled cell plain table-driven data (`Copy`, no strings) instead of
/// a freshly constructed profile per sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OsProfileId(pub u16);

/// The interned paper profile table, built once per process. Order is
/// [`OsProfile::all_paper_profiles`] order, so ids are stable for the
/// life of the program *and* across processes (the population sampler's
/// determinism relies on that).
pub fn os_profiles() -> &'static [OsProfile] {
    static TABLE: OnceLock<Vec<OsProfile>> = OnceLock::new();
    TABLE.get_or_init(OsProfile::all_paper_profiles)
}

impl OsProfileId {
    /// The interned profile this id names. Panics on an out-of-table id
    /// (ids only ever come from enumerating [`os_profiles`]).
    pub fn profile(self) -> &'static OsProfile {
        &os_profiles()[self.0 as usize]
    }

    /// The profile's display name.
    pub fn name(self) -> &'static str {
        &self.profile().name
    }

    /// Every id in table order.
    pub fn all() -> impl Iterator<Item = OsProfileId> {
        (0..os_profiles().len() as u16).map(OsProfileId)
    }

    /// Look an id up by profile display name — the inverse of
    /// [`OsProfileId::name`], used when a name arrives over the wire
    /// (e.g. a lab-daemon job spec) and must resolve to the interned
    /// table or be rejected.
    pub fn by_name(name: &str) -> Option<OsProfileId> {
        OsProfileId::all().find(|id| id.name() == name)
    }
}

/// A fully table-driven cell: every dimension is a `Copy` index or
/// variant, the OS profile an id into the interned table. This is the
/// unit the population sampler draws — a 16-byte value derived on the
/// fly per sample, where a [`Scenario`] would clone profile strings for
/// every one of a million draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpec {
    /// Interned OS profile under test.
    pub os: OsProfileId,
    /// Which build of the topology it attaches to.
    pub topology: TopologyVariant,
    /// The IPv4 DNS intervention in force.
    pub poison: PoisonVariant,
    /// The failure regime injected into the build.
    pub fault: FaultVariant,
    /// RNG seed for the client's stack.
    pub seed: u64,
}

impl CellSpec {
    /// Materialize the equivalent [`Scenario`] (clones the interned
    /// profile — needed only when the full result is wanted).
    pub fn to_scenario(self) -> Scenario {
        Scenario {
            os: self.os.profile().clone(),
            topology: self.topology,
            poison: self.poison,
            fault: self.fault,
            seed: self.seed,
        }
    }

    /// Run the cell and observe only the compact census row — the
    /// population hot path. See [`Scenario::run_observation`].
    pub fn run_observation(self) -> CellObservation {
        self.to_scenario().run_observation()
    }
}

/// Address family a task completed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathFamily {
    /// Completed against an IPv6 peer.
    V6,
    /// Completed against an IPv4 peer.
    V4,
    /// Did not complete.
    Fail,
}

impl PathFamily {
    fn of(o: &TaskOutcome) -> PathFamily {
        match o.peer() {
            Some(IpAddr::V6(_)) => PathFamily::V6,
            Some(IpAddr::V4(_)) => PathFamily::V4,
            None => PathFamily::Fail,
        }
    }

    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PathFamily::V6 => "v6",
            PathFamily::V4 => "v4",
            PathFamily::Fail => "fail",
        }
    }
}

/// One cell of the Fig. 4 evaluation matrix.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The client under test.
    pub os: OsProfile,
    /// Which build of the topology it attaches to.
    pub topology: TopologyVariant,
    /// The IPv4 DNS intervention in force.
    pub poison: PoisonVariant,
    /// The failure regime injected into the build.
    pub fault: FaultVariant,
    /// RNG seed for the client's stack.
    pub seed: u64,
}

impl Scenario {
    /// The full matrix: every paper OS profile × every topology variant
    /// × every poison policy, with seeds derived from `base_seed` so two
    /// matrices built from the same base are identical. All cells run
    /// clean; use [`Scenario::matrix_with_fault`] for an impaired sweep.
    pub fn matrix(base_seed: u64) -> Vec<Scenario> {
        Self::matrix_with_fault(base_seed, FaultVariant::Clean)
    }

    /// The same matrix with every cell run under `fault`. Seeds depend
    /// only on `base_seed` and cell index, so the clean and impaired
    /// matrices are cell-for-cell comparable.
    pub fn matrix_with_fault(base_seed: u64, fault: FaultVariant) -> Vec<Scenario> {
        let mut out = Vec::new();
        for topology in TopologyVariant::ALL {
            for poison in PoisonVariant::ALL {
                for os in OsProfile::all_paper_profiles() {
                    let seed = base_seed.wrapping_add(out.len() as u64);
                    out.push(Scenario {
                        os,
                        topology,
                        poison,
                        fault,
                        seed,
                    });
                }
            }
        }
        out
    }

    /// Stable human-readable identifier (used as the report key). Clean
    /// runs keep the historical three-part label so pre-fault reports
    /// stay byte-identical; impaired runs append the fault dimension.
    pub fn label(&self) -> String {
        let fault = match self.fault {
            FaultVariant::Clean => String::new(),
            f => format!("/{}", f.label()),
        };
        format!(
            "{}/{}/{}{}/seed{}",
            self.topology.label(),
            self.poison.label(),
            self.os.name,
            fault,
            self.seed
        )
    }

    /// Fault-independent cell key: topology/poison/OS/seed. Two matrices
    /// built from the same base seed share cell keys across fault
    /// variants, which is what lets a run manifest differ line up the
    /// clean and impaired verdicts for the same population.
    pub fn cell_label(&self) -> String {
        format!(
            "{}/{}/{}/seed{}",
            self.topology.label(),
            self.poison.label(),
            self.os.name,
            self.seed
        )
    }

    /// The compact table-driven form of this scenario — the inverse of
    /// [`CellSpec::to_scenario`]. `None` when the OS profile is not in
    /// the interned table (a hand-built profile has no id).
    pub fn cell_spec(&self) -> Option<CellSpec> {
        Some(CellSpec {
            os: OsProfileId::by_name(&self.os.name)?,
            topology: self.topology,
            poison: self.poison,
            fault: self.fault,
            seed: self.seed,
        })
    }

    /// Stable 64-bit digest of the scenario's configuration — every
    /// matrix dimension plus the seed and the resolved fault plan — for
    /// the run-manifest config section. A pure function of `self`,
    /// reproducible across processes.
    pub fn digest(&self) -> u64 {
        // FNV-1a over the label text covers topology, poison, OS and
        // seed; folding in the fault plan digest covers everything the
        // fault dimension resolves to (including the seed it samples
        // with and the NAT64 binding cap variant).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.label().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let cap = match self.fault.nat64_binding_cap() {
            Some(c) => c as u64 + 1,
            None => 0,
        };
        h ^ self.fault.plan(self.seed).digest().rotate_left(31) ^ cap
    }

    /// Build a fresh testbed, run this cell, and collect everything.
    ///
    /// Entirely driven by the virtual clock and the scenario seed: the
    /// result is a pure function of `self`, which is what lets the
    /// fleet runner execute scenarios on any thread in any order and
    /// still aggregate a deterministic report.
    ///
    /// Fleet cells never read the frame trace, so this runs under
    /// [`TraceMode::Hops`]; trace verbosity never perturbs the simulation
    /// (the result is identical in every mode — see
    /// [`Scenario::run_with_trace`] and the determinism tests), so the
    /// cheaper mode is a pure win.
    pub fn run(&self) -> ScenarioResult {
        self.run_with_trace(TraceMode::Hops)
    }

    /// [`Scenario::run`] with an explicit engine trace mode — `Off` for
    /// maximum-throughput sweeps, `Full` when the per-frame summaries are
    /// wanted (figure regeneration, debugging a single cell).
    pub fn run_with_trace(&self, trace: TraceMode) -> ScenarioResult {
        let (mut tb, _id, verdict) = self.execute(trace);
        let (entries, _) = census(&mut tb);
        ScenarioResult {
            label: self.label(),
            seed: self.seed,
            verdict,
            census: entries.into_iter().next().expect("one host attached"),
            metrics: tb.net.metrics(),
            completed_at: tb.net.now(),
        }
    }

    /// Run the cell and collect only the compact, `Copy` census row —
    /// the population hot path. No label string, no `CensusEntry`
    /// clones, and crucially no full [`MetricsSnapshot`] (which clones
    /// every node name and counter map): the two counters the census
    /// needs are read straight off the engine and the gateway. Every
    /// field agrees with what [`Scenario::run`] would report — see
    /// [`CellObservation::from_result`] and the equivalence test.
    pub fn run_observation(&self) -> CellObservation {
        let (mut tb, id, verdict) = self.execute(TraceMode::Off);
        observe_cell(&mut tb, id, &verdict)
    }

    /// Build the testbed, boot the client, run the browse workload, and
    /// classify the outcome — the body shared by the full-result and
    /// observation-only paths. Warm execution (`crate::arena`) shares
    /// [`run_cell_body`] and differs only in how the testbed arrives.
    fn execute(&self, trace: TraceMode) -> (Testbed, v6sim::engine::NodeId, Verdict) {
        let mut tb = Testbed::build(cell_config(self.topology, self.poison, trace));
        let (id, verdict) = run_cell_body(&mut tb, self.fault, self.os.clone(), self.seed);
        (tb, id, verdict)
    }
}

/// The [`TestbedConfig`] a cell's (topology, poison, trace) dimensions
/// resolve to. These are exactly the build-time knobs — everything else
/// a cell varies (fault plan, NAT64 cap, host profile, seed) is applied
/// per run by [`run_cell_body`], which is what makes testbeds reusable
/// across cells that share this config.
pub(crate) fn cell_config(
    topology: TopologyVariant,
    poison: PoisonVariant,
    trace: TraceMode,
) -> TestbedConfig {
    let managed = topology == TopologyVariant::PaperDefault;
    TestbedConfig {
        managed_switch: managed,
        pi_dhcp: managed,
        poison: poison.policy(),
        block_v4_internet: false,
        trace,
    }
}

/// Install the per-cell state on a post-build (or recycled) testbed,
/// boot the client, run the browse workload, and classify the outcome.
/// Cold ([`Scenario::execute`]) and warm ([`crate::arena::CellArena`])
/// paths both run exactly this body, in exactly this order — the
/// conditional fault install mirrors the fact that a fresh build never
/// sees `set_fault_plan` for a no-op plan, so `fault_active` agrees.
pub(crate) fn run_cell_body(
    tb: &mut Testbed,
    fault: FaultVariant,
    os: OsProfile,
    seed: u64,
) -> (v6sim::engine::NodeId, Verdict) {
    let plan = fault.plan(seed);
    if !plan.is_noop() {
        tb.net.set_fault_plan(plan);
    }
    if let Some(cap) = fault.nat64_binding_cap() {
        tb.gateway().nat64.set_max_bindings(Some(cap));
    }
    if fault == FaultVariant::BrokenDelegation {
        // Swap the Pi's flat DNS database for the delegation tree walked
        // iteratively over IPv6 only. `PiServer::reset` reinstalls the
        // flat database, so a recycled testbed starts from the same state
        // as a cold build.
        tb.pi_server().install_global_dns(delegated_internet_dns());
    }
    let id = tb.set_host_seeded(os, seed);
    tb.boot();
    // The workload names are constants; parse them once per process and
    // hand out clones (a DnsName clone is a reference-count bump).
    static SC24_NAME: std::sync::OnceLock<v6dns::name::DnsName> = std::sync::OnceLock::new();
    static IP6ME_NAME: std::sync::OnceLock<v6dns::name::DnsName> = std::sync::OnceLock::new();
    let sc24 = tb.run_task(
        id,
        AppTask::Browse {
            name: SC24_NAME
                .get_or_init(|| "sc24.supercomputing.org".parse().expect("static name"))
                .clone(),
            path: "/".into(),
        },
        25,
    );
    let ip6me = tb.run_task(
        id,
        AppTask::Browse {
            name: IP6ME_NAME
                .get_or_init(|| "ip6.me".parse().expect("static name"))
                .clone(),
            path: "/".into(),
        },
        25,
    );
    let intervened = matches!(
        (&sc24, &ip6me),
        (TaskOutcome::HttpOk { body, .. }, _) | (_, TaskOutcome::HttpOk { body, .. })
            if body.contains("helpdesk")
    );
    let h = tb.host(id);
    let verdict = Verdict {
        rfc8925_engaged: h.v6only_mode,
        has_v4: h.v4_active(),
        sc24: PathFamily::of(&sc24),
        ip6me: PathFamily::of(&ip6me),
        intervened,
    };
    (id, verdict)
}

/// Project a finished cell down to the compact observation — the
/// shared tail of [`Scenario::run_observation`] and the arena's warm
/// observation path.
pub(crate) fn observe_cell(
    tb: &mut Testbed,
    id: v6sim::engine::NodeId,
    verdict: &Verdict,
) -> CellObservation {
    let h = tb.host(id);
    let has_v6 = h.v6_global_active();
    let has_v4 = h.v4_active();
    let dns_failure = h.dns_failure();
    let fault_dropped = tb.net.fault_frames_dropped();
    let nat64_refusals = tb.gateway().nat64.dropped_table_full;
    CellObservation {
        rfc8925_engaged: verdict.rfc8925_engaged,
        has_v4: verdict.has_v4,
        sc24: verdict.sc24,
        ip6me: verdict.ip6me,
        intervened: verdict.intervened,
        naive_counted: true,
        accurate_counted: has_v6 && !has_v4,
        degraded: fault_dropped > 0 || nat64_refusals > 0,
        dns_failure,
        completed_us: tb.net.now().as_micros(),
        events: tb.net.events_processed(),
    }
}

/// The compact, `Copy` observation of one cell — everything the
/// population census folds into its sketch, and nothing else. A strict
/// projection of [`ScenarioResult`]: [`CellObservation::from_result`]
/// computes the identical value from a full result, which is how the
/// streaming aggregation is proven equivalent to the materializing one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellObservation {
    /// RFC 8925 engaged after boot (IPv4 administratively off).
    pub rfc8925_engaged: bool,
    /// Client still holds an IPv4 data path.
    pub has_v4: bool,
    /// Family that reached the IPv4-only conference site.
    pub sc24: PathFamily,
    /// Family that reached dual-stack ip6.me.
    pub ip6me: PathFamily,
    /// Client was redirected to the intervention page.
    pub intervened: bool,
    /// Counted by the SC23-style naive census.
    pub naive_counted: bool,
    /// Counted by the SC24-style accurate census.
    pub accurate_counted: bool,
    /// Injected faults visibly bit (fault drops or NAT64 refusals).
    pub degraded: bool,
    /// Most severe classified resolution failure the client saw
    /// (lowest [`ResolutionFailure::index`] wins), if any.
    pub dns_failure: Option<ResolutionFailure>,
    /// Virtual microseconds at which the cell finished.
    pub completed_us: u64,
    /// Engine events the cell processed.
    pub events: u64,
}

impl CellObservation {
    /// Project a full [`ScenarioResult`] down to the observation — the
    /// same fields, derived the same way `v6fleet`'s materializing
    /// aggregation derives them.
    pub fn from_result(r: &ScenarioResult) -> CellObservation {
        let nat64_refusals = r
            .metrics
            .node("5g-gw")
            .map(|n| n.device.get("nat64.dropped_table_full"))
            .unwrap_or(0);
        CellObservation {
            rfc8925_engaged: r.verdict.rfc8925_engaged,
            has_v4: r.verdict.has_v4,
            sc24: r.verdict.sc24,
            ip6me: r.verdict.ip6me,
            intervened: r.verdict.intervened,
            naive_counted: r.census.naive_counted,
            accurate_counted: r.census.accurate_counted,
            degraded: r.metrics.faults.total_dropped() > 0 || nat64_refusals > 0,
            dns_failure: r.dns_failure(),
            completed_us: r.completed_at.as_micros(),
            events: r.metrics.engine.events_processed,
        }
    }
}

/// The scenario-level observations the fleet report aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// RFC 8925 engaged after boot (IPv4 administratively off).
    pub rfc8925_engaged: bool,
    /// Client still holds an IPv4 data path.
    pub has_v4: bool,
    /// Family that reached the IPv4-only conference site.
    pub sc24: PathFamily,
    /// Family that reached dual-stack ip6.me.
    pub ip6me: PathFamily,
    /// Client was redirected to the intervention page.
    pub intervened: bool,
}

/// Everything one scenario run produced — plain data, `Clone + Eq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioResult {
    /// [`Scenario::label`] of the run.
    pub label: String,
    /// The client seed.
    pub seed: u64,
    /// Outcome classification.
    pub verdict: Verdict,
    /// The client's census row.
    pub census: CensusEntry,
    /// Full engine + per-node counter snapshot at the end of the run.
    pub metrics: MetricsSnapshot,
    /// Virtual-clock time when the run finished.
    pub completed_at: SimTime,
}

impl ScenarioResult {
    /// Most severe classified resolution failure the client recorded —
    /// the same lowest-index-wins projection `Host::dns_failure`
    /// applies, read back out of the host's device metrics (the first
    /// host is always the `host0-`-prefixed node).
    pub fn dns_failure(&self) -> Option<ResolutionFailure> {
        self.metrics
            .nodes
            .iter()
            .find(|n| n.name.starts_with("host0-"))
            .and_then(|n| {
                ResolutionFailure::ALL
                    .into_iter()
                    .find(|f| n.device.get(&format!("dns.fail.{}", f.label())) > 0)
            })
    }

    /// Paper-style one-line rendering.
    pub fn render(&self) -> String {
        format!(
            "{:<48} rfc8925={:<5} v4-path={:<5} sc24=via-{:<4} ip6me=via-{:<4} intervened={}",
            self.label,
            self.verdict.rfc8925_engaged,
            self.verdict.has_v4,
            self.verdict.sc24.label(),
            self.verdict.ip6me.label(),
            self.verdict.intervened,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_the_full_cross_product() {
        let m = Scenario::matrix(1);
        let profiles = OsProfile::all_paper_profiles().len();
        assert_eq!(
            m.len(),
            profiles * TopologyVariant::ALL.len() * PoisonVariant::ALL.len()
        );
        // Labels are unique (they key the fleet report).
        let mut labels: Vec<String> = m.iter().map(Scenario::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), m.len());
    }

    #[test]
    fn cell_labels_are_fault_invariant_and_digests_are_not() {
        let clean = Scenario::matrix(5);
        let faulted = Scenario::matrix_with_fault(5, FaultVariant::Dns64Outage);
        for (c, f) in clean.iter().zip(&faulted) {
            assert_eq!(
                c.cell_label(),
                f.cell_label(),
                "cell key ignores the fault dimension"
            );
            assert_ne!(c.digest(), f.digest(), "config digest does not");
            assert_eq!(c.digest(), c.digest(), "digest is a pure function");
        }
        let mut other_seed = clean[0].clone();
        other_seed.seed += 1;
        assert_ne!(clean[0].digest(), other_seed.digest());
    }

    #[test]
    fn same_scenario_same_result() {
        let s = Scenario {
            os: OsProfile::nintendo_switch(),
            topology: TopologyVariant::PaperDefault,
            poison: PoisonVariant::WildcardA,
            fault: FaultVariant::Clean,
            seed: 42,
        };
        let a = s.run();
        let b = s.run();
        assert_eq!(a, b);
        assert!(a.verdict.intervened, "v4-only console gets the page");
        assert_eq!(a.verdict.sc24, PathFamily::V4);
    }

    #[test]
    fn observation_is_a_strict_projection_of_the_full_result() {
        // Across a spread of cells — both topologies, an RFC 8925
        // client, a v4-only console, and two impaired runs — the cheap
        // observation path must agree field-for-field with projecting
        // the full materialized result.
        let cells = [
            Scenario {
                os: OsProfile::macos(),
                topology: TopologyVariant::PaperDefault,
                poison: PoisonVariant::WildcardA,
                fault: FaultVariant::Clean,
                seed: 11,
            },
            Scenario {
                os: OsProfile::nintendo_switch(),
                topology: TopologyVariant::RawGateway,
                poison: PoisonVariant::Off,
                fault: FaultVariant::Clean,
                seed: 12,
            },
            Scenario {
                os: OsProfile::windows_10(),
                topology: TopologyVariant::PaperDefault,
                poison: PoisonVariant::Rpz,
                fault: FaultVariant::LossyUplink,
                seed: 13,
            },
            Scenario {
                os: OsProfile::macos(),
                topology: TopologyVariant::PaperDefault,
                poison: PoisonVariant::WildcardA,
                fault: FaultVariant::Nat64Exhaustion,
                seed: 14,
            },
            Scenario {
                os: OsProfile::macos(),
                topology: TopologyVariant::PaperDefault,
                poison: PoisonVariant::WildcardA,
                fault: FaultVariant::BrokenDelegation,
                seed: 15,
            },
        ];
        for s in cells {
            let full = CellObservation::from_result(&s.run());
            let cheap = s.run_observation();
            assert_eq!(full, cheap, "{} diverged", s.label());
        }
    }

    #[test]
    fn cell_spec_round_trips_through_the_interned_table() {
        let table = os_profiles();
        assert_eq!(table.len(), OsProfile::all_paper_profiles().len());
        for id in OsProfileId::all() {
            assert_eq!(id.name(), table[id.0 as usize].name);
        }
        let spec = CellSpec {
            os: OsProfileId(6), // macOS in table order
            topology: TopologyVariant::PaperDefault,
            poison: PoisonVariant::WildcardA,
            fault: FaultVariant::Clean,
            seed: 42,
        };
        assert_eq!(spec.os.name(), "macOS");
        let s = spec.to_scenario();
        assert_eq!(s.os.name, "macOS");
        assert_eq!(s.seed, 42);
        assert_eq!(spec.run_observation(), s.run_observation());
    }

    #[test]
    fn broken_delegation_fails_sc24_with_classified_reason() {
        // A v6-only (RFC 8925) client resolving through the v4-only-glue
        // authoritative fails sc24 with `no-aaaa-glue` — a classified
        // failure, not a timeout — while dual-glue ip6.me keeps working.
        let s = Scenario {
            os: OsProfile::macos(),
            topology: TopologyVariant::PaperDefault,
            poison: PoisonVariant::WildcardA,
            fault: FaultVariant::BrokenDelegation,
            seed: 21,
        };
        let o = s.run_observation();
        assert_eq!(o.dns_failure, Some(ResolutionFailure::NoAaaaGlue));
        assert_eq!(o.sc24, PathFamily::Fail, "sc24 unreachable, classified");
        assert_eq!(o.ip6me, PathFamily::V6, "dual glue keeps resolving");
        // A v4-only console still gets the wildcard-A intervention: the
        // poisoned resolver answers A locally, never touching the tree.
        let s4 = Scenario {
            os: OsProfile::nintendo_switch(),
            seed: 22,
            ..s
        };
        let o4 = s4.run_observation();
        assert!(o4.intervened, "the intervention survives the fault");
        assert_eq!(o4.dns_failure, None);
    }

    #[test]
    fn metrics_snapshot_sees_every_device() {
        let s = Scenario {
            os: OsProfile::macos(),
            topology: TopologyVariant::PaperDefault,
            poison: PoisonVariant::WildcardA,
            fault: FaultVariant::Clean,
            seed: 7,
        };
        let r = s.run();
        let m = &r.metrics;
        let gw = m.node("5g-gw").expect("gateway row");
        assert!(gw.link.frames_rx > 0 && gw.link.frames_tx > 0);
        assert!(
            gw.device.get("nat64.outbound") > 0,
            "RFC 8925 client reaches the v4-only site via NAT64: {}",
            gw.device
        );
        let pi = m.node("raspberry-pi").expect("pi row");
        assert!(pi.device.get("dns64.queries") > 0, "healthy resolver used");
        assert!(
            m.node("managed-sw")
                .expect("switch row")
                .device
                .get("forwarded")
                > 0
        );
        assert!(m.engine.events_processed > 0 && m.engine.queue_high_water > 0);
    }
}
