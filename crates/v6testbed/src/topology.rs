//! The Figure 4 topology, as a reusable builder.
//!
//! ```text
//!                         ┌──────────────┐ WAN ┌──────────────┐
//!   clients ── managed ───┤ 5G gateway   ├─────┤ internet     ├── ip6.me
//!              switch ────┤ (NAT64/44,   │     │ router       ├── mirror
//!                 │       │  broken RA,  │     │              ├── sc24.supercomputing.org
//!            raspberry pi │  rogue DHCP) │     │              ├── vpn / vtc / echolink
//!            (DNS64 + 108 └──────────────┘     └──────────────┘└── 9.9.9.9
//!             + poisoned dnsmasq)
//! ```

use crate::nodes::{InternetRouter, PiServer, PublicDns};
use crate::zones::addrs;
use v6dns::poison::PoisonPolicy;
use v6host::profiles::OsProfile;
use v6host::stack::Host;
use v6host::tasks::{AppTask, TaskOutcome};
use v6portal::server::{PortalServer, VhostContent};
use v6sim::engine::{Network, NodeId, TraceMode};
use v6sim::gateway::{FiveGGateway, LAN, WAN};
use v6sim::l2::Switch;
use v6sim::time::SimTime;

/// Maximum clients a single testbed instance supports.
pub const MAX_HOSTS: usize = 48;

/// Knobs for building testbed variants.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Deploy the managed switch (RA injection + DHCP snooping). `false`
    /// reproduces the raw-gateway condition of Fig. 3.
    pub managed_switch: bool,
    /// Deploy the Pi's DHCP server (option 108).
    pub pi_dhcp: bool,
    /// The IPv4 DNS intervention policy on the Pi's dnsmasq.
    pub poison: PoisonPolicy,
    /// Fig. 8 knob: block legacy IPv4 internet at the gateway.
    pub block_v4_internet: bool,
    /// How much the engine records per delivered frame. Figure/golden
    /// paths want [`TraceMode::Full`] (the default); fleet sweeps run
    /// [`TraceMode::Hops`] or [`TraceMode::Off`] for throughput.
    pub trace: TraceMode,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            managed_switch: true,
            pi_dhcp: true,
            poison: PoisonPolicy::WildcardA {
                answer: addrs::IP6ME_V4.parse().expect("static ip"),
                ttl: 60,
            },
            block_v4_internet: false,
            trace: TraceMode::Full,
        }
    }
}

/// A built testbed.
///
/// ```
/// use v6host::profiles::OsProfile;
/// use v6host::tasks::{AppTask, TaskOutcome};
/// use v6testbed::Testbed;
///
/// let mut tb = Testbed::paper_default();
/// let console = tb.add_host(OsProfile::nintendo_switch()); // IPv4-only
/// tb.boot();
/// let o = tb.run_task(console, AppTask::Browse {
///     name: "sc24.supercomputing.org".parse().unwrap(),
///     path: "/".into(),
/// }, 25);
/// // The poisoned A record delivered the IPv6-only explanation page:
/// assert!(matches!(o, TaskOutcome::HttpOk { body, .. } if body.contains("helpdesk")));
/// ```
pub struct Testbed {
    /// The simulation.
    pub net: Network,
    /// Node ids.
    pub gw: NodeId,
    /// Managed (or dumb) switch.
    pub sw: NodeId,
    /// Raspberry Pi server.
    pub pi: NodeId,
    /// Internet core router.
    pub internet: NodeId,
    /// ip6.me portal.
    pub ip6me: NodeId,
    /// test-ipv6.com mirror.
    pub mirror: NodeId,
    /// sc24.supercomputing.org (v4-only web).
    pub sc24: NodeId,
    /// VPN concentrator.
    pub vpnsrv: NodeId,
    /// VTC provider (v4-only, port 443).
    pub vtc: NodeId,
    /// Echolink-style literal-v4 service.
    pub echolink: NodeId,
    /// 9.9.9.9.
    pub public_dns: NodeId,
    /// Client hosts in attach order.
    pub hosts: Vec<NodeId>,
    next_host_port: u32,
}

impl Testbed {
    /// Build the topology (no clients yet).
    pub fn build(config: TestbedConfig) -> Testbed {
        let mut net = Network::new();
        net.trace_mode = config.trace;
        let mut gw_node = FiveGGateway::new("5g-gw");
        gw_node.block_v4_internet = config.block_v4_internet;
        let gw = net.add_node(Box::new(gw_node));
        let sw = if config.managed_switch {
            net.add_node(Box::new(Switch::managed(
                "managed-sw",
                2 + MAX_HOSTS as u32,
                0,
            )))
        } else {
            net.add_node(Box::new(Switch::new("dumb-sw", 2 + MAX_HOSTS as u32)))
        };
        let pi = net.add_node(Box::new(PiServer::new(config.poison, config.pi_dhcp)));
        let mut router = InternetRouter::new("internet");
        // Port plan: 0 gw, 1 ip6me, 2 mirror, 3 sc24, 4 vpn, 5 vtc,
        // 6 echolink, 7 public dns.
        router
            .route_v4("100.64.0.0/10", 0)
            .route_v4(&format!("{}/32", addrs::IP6ME_V4), 1)
            .route_v4(&format!("{}/32", addrs::MIRROR_V4), 2)
            .route_v4(&format!("{}/32", addrs::SC24_V4), 3)
            .route_v4(&format!("{}/32", addrs::VPN_V4), 4)
            .route_v4(&format!("{}/32", addrs::VTC_V4), 5)
            .route_v4(&format!("{}/32", addrs::ECHOLINK_V4), 6)
            .route_v4(&format!("{}/32", addrs::PUBLIC_DNS_V4), 7)
            .route_v6("2607:fb90::/32", 0)
            .route_v6(&format!("{}/128", addrs::IP6ME_V6), 1)
            .route_v6(&format!("{}/128", addrs::MIRROR_V6), 2);
        let internet = net.add_node(Box::new(router));

        let ip6me = net.add_node(Box::new(PortalServer::ip6me()));
        let mirror = net.add_node(Box::new(PortalServer::mirror()));
        let sc24 = net.add_node(Box::new(
            PortalServer::new(
                "sc24-web",
                vec![addrs::SC24_V4.parse().expect("static ip")],
                vec![],
            )
            .with_vhost(
                "sc24.supercomputing.org",
                VhostContent::Fixed("SC24: the international conference for HPC\n".into()),
            ),
        ));
        let mut vpn_node = PortalServer::new(
            "vpn-concentrator",
            vec![addrs::VPN_V4.parse().expect("static ip")],
            vec![],
        );
        vpn_node.tcp_ports = vec![443];
        let vpnsrv = net.add_node(Box::new(vpn_node));
        let mut vtc_node = PortalServer::new(
            "vtc-provider",
            vec![addrs::VTC_V4.parse().expect("static ip")],
            vec![],
        );
        vtc_node.tcp_ports = vec![443, 80];
        let vtc = net.add_node(Box::new(vtc_node));
        let mut echolink_node = PortalServer::new(
            "echolink-svc",
            vec![addrs::ECHOLINK_V4.parse().expect("static ip")],
            vec![],
        );
        echolink_node.tcp_ports = vec![5198];
        let echolink = net.add_node(Box::new(echolink_node));
        let public_dns = net.add_node(Box::new(PublicDns::new()));

        // Wiring. Switch port 0 = Pi (the snoop-trusted port), 1 = gateway.
        net.link(sw, 0, pi, 0, SimTime::from_micros(50));
        net.link(sw, 1, gw, LAN, SimTime::from_micros(50));
        net.link(gw, WAN, internet, 0, SimTime::from_millis(20));
        net.link(internet, 1, ip6me, 0, SimTime::from_millis(5));
        net.link(internet, 2, mirror, 0, SimTime::from_millis(5));
        net.link(internet, 3, sc24, 0, SimTime::from_millis(5));
        net.link(internet, 4, vpnsrv, 0, SimTime::from_millis(5));
        net.link(internet, 5, vtc, 0, SimTime::from_millis(5));
        net.link(internet, 6, echolink, 0, SimTime::from_millis(5));
        net.link(internet, 7, public_dns, 0, SimTime::from_millis(5));

        Testbed {
            net,
            gw,
            sw,
            pi,
            internet,
            ip6me,
            mirror,
            sc24,
            vpnsrv,
            vtc,
            echolink,
            public_dns,
            hosts: Vec::new(),
            next_host_port: 2,
        }
    }

    /// Default testbed with the wildcard-A intervention armed.
    pub fn paper_default() -> Testbed {
        Testbed::build(TestbedConfig::default())
    }

    /// Restore the testbed to its post-[`Testbed::build`] state without
    /// reallocating nodes, links, or zones — the warm-cell path.
    ///
    /// The engine recycles its queue, clock, frame pool, trace buffers,
    /// fault state, and every counter; each infrastructure node resets
    /// its dynamic state (NAT bindings, DNS caches, DHCP leases, MAC
    /// tables, flow logs). Per-cell knobs (`block_v4_internet`, trace
    /// mode) are re-applied from `config`. The topology-shaping knobs
    /// (`managed_switch`, `pi_dhcp`, `poison`) must match what the
    /// testbed was built with: they choose *which nodes exist*, which a
    /// recycle cannot change — the cell arena keys arenas by exactly
    /// those knobs so the invariant holds by construction.
    ///
    /// Attached hosts are *not* reset here (a recycled host would keep
    /// a stale OS profile); the warm path swaps them wholesale via
    /// [`Testbed::set_host_seeded`].
    pub fn recycle(&mut self, config: &TestbedConfig) {
        self.net.recycle();
        self.net.trace_mode = config.trace;
        {
            let gw = self.net.node_mut::<FiveGGateway>(self.gw);
            gw.reset();
            gw.block_v4_internet = config.block_v4_internet;
        }
        self.net.node_mut::<Switch>(self.sw).reset();
        self.net.node_mut::<PiServer>(self.pi).reset();
        self.net.node_mut::<InternetRouter>(self.internet).reset();
        for portal in [
            self.ip6me,
            self.mirror,
            self.sc24,
            self.vpnsrv,
            self.vtc,
            self.echolink,
        ] {
            self.net.node_mut::<PortalServer>(portal).reset();
        }
        self.net.node_mut::<PublicDns>(self.public_dns).reset();
    }

    /// Attach a client with the given OS profile. Must be called before the
    /// first `run_*`.
    pub fn add_host(&mut self, profile: OsProfile) -> NodeId {
        let seed = 0x1000 + self.hosts.len() as u64;
        self.add_host_seeded(profile, seed)
    }

    /// Attach a client with an explicit RNG seed, so independent scenario
    /// runs (the fleet) can give every host its own deterministic stream.
    pub fn add_host_seeded(&mut self, profile: OsProfile, seed: u64) -> NodeId {
        assert!(
            self.hosts.len() < MAX_HOSTS,
            "testbed supports at most {MAX_HOSTS} hosts"
        );
        let name = format!("host{}-{}", self.hosts.len(), profile.name);
        let id = self.net.add_node(Box::new(Host::new(name, profile, seed)));
        self.net.link(
            self.sw,
            self.next_host_port,
            id,
            0,
            SimTime::from_micros(50),
        );
        self.next_host_port += 1;
        self.hosts.push(id);
        id
    }

    /// Attach the single-client cell's host, warm-path aware: the first
    /// call links a fresh host exactly like [`Testbed::add_host_seeded`];
    /// on a recycled testbed the existing host node is replaced in place
    /// (the switch port stays linked), so the node id — and therefore
    /// event ordering — is identical to a cold build.
    pub fn set_host_seeded(&mut self, profile: OsProfile, seed: u64) -> NodeId {
        match self.hosts.first().copied() {
            Some(id) => {
                debug_assert_eq!(self.hosts.len(), 1, "warm path supports one host");
                let name = format!("host0-{}", profile.name);
                self.net
                    .replace_node(id, Box::new(Host::new(name, profile, seed)));
                id
            }
            None => self.add_host_seeded(profile, seed),
        }
    }

    /// Run the simulation for `secs` simulated seconds.
    pub fn run_secs(&mut self, secs: u64) {
        self.net.run_for(SimTime::from_secs(secs));
    }

    /// Let every client finish autoconfiguration (SLAAC + DHCP + RFC 8925).
    pub fn boot(&mut self) {
        self.net.run_until(SimTime::from_secs(15));
    }

    /// Borrow a host.
    pub fn host(&mut self, id: NodeId) -> &mut Host {
        self.net.node_mut::<Host>(id)
    }

    /// Borrow the gateway.
    pub fn gateway(&mut self) -> &mut FiveGGateway {
        self.net.node_mut::<FiveGGateway>(self.gw)
    }

    /// Borrow the Pi.
    pub fn pi_server(&mut self) -> &mut PiServer {
        self.net.node_mut::<PiServer>(self.pi)
    }

    /// Borrow a portal by node id.
    pub fn portal(&mut self, id: NodeId) -> &mut PortalServer {
        self.net.node_mut::<PortalServer>(id)
    }

    /// Start a task on `host`.
    pub fn start_task(&mut self, host: NodeId, task: AppTask) -> u64 {
        self.net
            .with_node::<Host, _>(host, |h, ctx| h.run_task(task, ctx))
    }

    /// Start a task, run up to `max_secs`, and return its outcome.
    pub fn run_task(&mut self, host: NodeId, task: AppTask, max_secs: u64) -> TaskOutcome {
        let tid = self.start_task(host, task);
        let deadline = self.net.now() + SimTime::from_secs(max_secs);
        loop {
            if let Some(o) = self.host(host).outcome(tid) {
                return o.clone();
            }
            if self.net.now() >= deadline {
                return self
                    .host(host)
                    .outcome(tid)
                    .cloned()
                    .unwrap_or(TaskOutcome::Unreachable);
            }
            let step_to = self.net.now() + SimTime::from_millis(200);
            self.net.run_until(step_to.min(deadline));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::IpAddr;

    #[test]
    fn full_topology_browse_paths() {
        let mut tb = Testbed::paper_default();
        let mac = tb.add_host(OsProfile::macos()); // RFC 8925 client
        let win10 = tb.add_host(OsProfile::windows_10()); // dual-stack
        let switch = tb.add_host(OsProfile::nintendo_switch()); // v4-only
        tb.boot();

        // RFC 8925 client is v6-only and reaches the v4-only sc24 site via
        // DNS64+NAT64.
        assert!(tb.host(mac).v6only_mode);
        let o = tb.run_task(
            mac,
            AppTask::Browse {
                name: "sc24.supercomputing.org".parse().unwrap(),
                path: "/".into(),
            },
            20,
        );
        match &o {
            TaskOutcome::HttpOk { status, peer, .. } => {
                assert_eq!(*status, 200);
                assert!(
                    matches!(peer, IpAddr::V6(a) if a.to_string().starts_with("64:ff9b::")),
                    "reached via NAT64: {peer}"
                );
            }
            other => panic!("mac browse failed: {other:?}"),
        }

        // The dual-stack Win10 client browses ip6.me over genuine v6.
        let o = tb.run_task(
            win10,
            AppTask::Browse {
                name: "ip6.me".parse().unwrap(),
                path: "/".into(),
            },
            20,
        );
        match &o {
            TaskOutcome::HttpOk { peer, body, .. } => {
                assert!(matches!(peer, IpAddr::V6(_)), "AAAA preferred: {peer}");
                assert!(body.contains("IPv6 connectivity confirmed"), "{body}");
            }
            other => panic!("win10 browse failed: {other:?}"),
        }

        // The v4-only Switch is intercepted: every site becomes ip6.me's v4
        // address and the page explains why.
        let o = tb.run_task(
            switch,
            AppTask::Browse {
                name: "sc24.supercomputing.org".parse().unwrap(),
                path: "/".into(),
            },
            20,
        );
        match &o {
            TaskOutcome::HttpOk { peer, body, .. } => {
                assert_eq!(*peer, IpAddr::V4(addrs::IP6ME_V4.parse().unwrap()));
                assert!(body.contains("visit the SCinet helpdesk"), "{body}");
            }
            other => panic!("switch intervention failed: {other:?}"),
        }
    }
}
