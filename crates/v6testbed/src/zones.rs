//! The simulated internet's DNS content: every name the paper's experiments
//! resolve, with the address-family mix each experiment depends on.

use v6dns::codec::RData;
use v6dns::name::DnsName;
use v6dns::server::GlobalDns;
use v6dns::zone::Zone;

/// Well-known addresses used across the testbed.
pub mod addrs {
    /// ip6.me IPv4 (the poisoned-A answer from the paper's dnsmasq line).
    pub const IP6ME_V4: &str = "23.153.8.71";
    /// ip6.me IPv6 (visible in the paper's Fig. 7 ping).
    pub const IP6ME_V6: &str = "2001:4810:0:3::71";
    /// The SC test-ipv6.com mirror, IPv4.
    pub const MIRROR_V4: &str = "198.51.100.80";
    /// The SC test-ipv6.com mirror, IPv6.
    pub const MIRROR_V6: &str = "2602:5c24::80";
    /// sc24.supercomputing.org — IPv4-only in the paper (Fig. 7 reaches it
    /// as 64:ff9b::be5c:9e04 = 190.92.158.4).
    pub const SC24_V4: &str = "190.92.158.4";
    /// vpn.anl.gov (Fig. 9 pings it as 64:ff9b::82ca:e4fd).
    pub const VPN_V4: &str = "130.202.228.253";
    /// The IPv4-only VTC provider from Fig. 8.
    pub const VTC_V4: &str = "198.51.100.14";
    /// The Echolink-style IPv4-literal service (Fig. 2).
    pub const ECHOLINK_V4: &str = "44.12.7.9";
    /// A public recursive resolver reachable over IPv4 (the Fig. 6 escape
    /// hatch target).
    pub const PUBLIC_DNS_V4: &str = "9.9.9.9";
}

fn n(s: &str) -> DnsName {
    s.parse().expect("static name")
}

/// The global DNS database.
///
/// The zone content is parsed once per process and shared copy-on-write
/// (see `GlobalDns`'s `Arc`-backed zone list): each testbed instance gets
/// its own query counters, but a fleet sweep no longer re-parses every
/// record three times per cell.
pub fn internet_dns() -> GlobalDns {
    static DB: std::sync::OnceLock<GlobalDns> = std::sync::OnceLock::new();
    DB.get_or_init(build_internet_dns).clone()
}

/// The same internet as [`internet_dns`], but published as a *delegation
/// tree* and resolved iteratively over IPv6 only — the broken-delegation
/// fault condition.
///
/// The tree is authored as committed master-file fixtures under
/// `tests/corpus/zones/` (the `dns-realism` CI lane gates their canonical
/// form). Its load-bearing property: the `org` parent delegates
/// `supercomputing.org` to an authoritative whose glue is **A-only**, so a
/// resolver walking the tree over IPv6 cannot reach it and fails with the
/// classified reason `no-aaaa-glue` — while `ip6.me` sits behind
/// dual-stack glue and keeps resolving. Zones without a parent in the
/// tree (`mirror.sc24`, `anl.gov`, `vtc.example`) answer directly, so the
/// rest of the testbed's name mix is unchanged.
pub fn delegated_internet_dns() -> GlobalDns {
    static DB: std::sync::OnceLock<GlobalDns> = std::sync::OnceLock::new();
    DB.get_or_init(build_delegated_internet_dns).clone()
}

fn build_delegated_internet_dns() -> GlobalDns {
    const FIXTURES: &[&str] = &[
        include_str!("../../../tests/corpus/zones/org.zone"),
        include_str!("../../../tests/corpus/zones/supercomputing-org.zone"),
        include_str!("../../../tests/corpus/zones/me.zone"),
        include_str!("../../../tests/corpus/zones/ip6-me.zone"),
        include_str!("../../../tests/corpus/zones/mirror-sc24.zone"),
        include_str!("../../../tests/corpus/zones/anl-gov.zone"),
        include_str!("../../../tests/corpus/zones/vtc-example.zone"),
    ];
    let mut g = GlobalDns::new();
    for text in FIXTURES {
        g.add_zone(v6dns::master::parse(text).expect("committed fixture parses"));
    }
    g.set_iterative(v6dns::server::ResolverTransport::V6_ONLY);
    g
}

fn build_internet_dns() -> GlobalDns {
    let mut g = GlobalDns::new();

    let mut me = Zone::new(n("ip6.me"), 60);
    me.add_str("@", 60, RData::A(addrs::IP6ME_V4.parse().expect("static")));
    me.add_str(
        "@",
        60,
        RData::Aaaa(addrs::IP6ME_V6.parse().expect("static")),
    );
    g.add_zone(me);

    // The mirror's subtest hostnames: the family mix *is* the test.
    let mut mirror = Zone::new(n("mirror.sc24"), 60);
    mirror.add_str(
        "ds",
        60,
        RData::A(addrs::MIRROR_V4.parse().expect("static")),
    );
    mirror.add_str(
        "ds",
        60,
        RData::Aaaa(addrs::MIRROR_V6.parse().expect("static")),
    );
    mirror.add_str(
        "ipv4",
        60,
        RData::A(addrs::MIRROR_V4.parse().expect("static")),
    );
    mirror.add_str(
        "ipv6",
        60,
        RData::Aaaa(addrs::MIRROR_V6.parse().expect("static")),
    );
    mirror.add_str(
        "mtu",
        60,
        RData::Aaaa(addrs::MIRROR_V6.parse().expect("static")),
    );
    g.add_zone(mirror);

    let mut sc = Zone::new(n("supercomputing.org"), 300);
    sc.add_str(
        "sc24",
        120,
        RData::A(addrs::SC24_V4.parse().expect("static")),
    );
    sc.add_str("www.sc24", 120, RData::Cname(n("sc24.supercomputing.org")));
    g.add_zone(sc);

    let mut anl = Zone::new(n("anl.gov"), 300);
    anl.add_str("vpn", 120, RData::A(addrs::VPN_V4.parse().expect("static")));
    g.add_zone(anl);

    let mut vtc = Zone::new(n("vtc.example"), 300);
    vtc.add_str("@", 120, RData::A(addrs::VTC_V4.parse().expect("static")));
    g.add_zone(vtc);

    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6dns::codec::{Question, RType};
    use v6dns::server::Resolver;

    #[test]
    fn delegated_tree_breaks_sc24_over_v6_but_not_ip6me() {
        use v6dns::server::ResolutionFailure;
        let mut g = delegated_internet_dns();
        // The v4-only-glue authoritative is unreachable over IPv6: the
        // classified failure, not a timeout.
        for rtype in [RType::A, RType::Aaaa] {
            let a = g.resolve(&Question::new(n("sc24.supercomputing.org"), rtype), 0);
            assert_eq!(a.reason, Some(ResolutionFailure::NoAaaaGlue), "{rtype:?}");
        }
        // Dual glue keeps ip6.me resolving through its referral.
        assert!(g
            .resolve(&Question::new(n("ip6.me"), RType::Aaaa), 0)
            .is_positive());
        assert!(g.referrals >= 1);
        // Parentless zones answer directly, exactly like the flat DNS.
        assert!(g
            .resolve(&Question::new(n("vpn.anl.gov"), RType::A), 0)
            .is_positive());
        assert!(g
            .resolve(&Question::new(n("ipv6.mirror.sc24"), RType::Aaaa), 0)
            .is_positive());
    }

    #[test]
    fn family_mix_matches_experiment_needs() {
        let mut g = internet_dns();
        // sc24 is v4-only — needed by Fig. 7.
        let a = g.resolve(&Question::new(n("sc24.supercomputing.org"), RType::Aaaa), 0);
        assert!(a.records.is_empty());
        let a = g.resolve(&Question::new(n("sc24.supercomputing.org"), RType::A), 0);
        assert!(a.is_positive());
        // ipv6.mirror.sc24 is AAAA-only — needed by the scoring subtests.
        let a = g.resolve(&Question::new(n("ipv6.mirror.sc24"), RType::A), 0);
        assert!(a.records.is_empty());
        let a = g.resolve(&Question::new(n("ipv6.mirror.sc24"), RType::Aaaa), 0);
        assert!(a.is_positive());
        // ip6.me is dual-stack.
        assert!(g
            .resolve(&Question::new(n("ip6.me"), RType::A), 0)
            .is_positive());
        assert!(g
            .resolve(&Question::new(n("ip6.me"), RType::Aaaa), 0)
            .is_positive());
    }
}
