//! Warm-vs-cold differential lockdown: a recycled testbed must be
//! indistinguishable from a freshly built one.
//!
//! The warm-cell arena (PR 9) only pays off if nobody ever has to ask
//! "was that census row produced warm or cold?" — so these tests pin
//! the strongest equivalence the types can express: over *random cell
//! sequences* through one shared [`CellArena`], every observation (and
//! every full [`ScenarioResult`], metrics snapshot included) is equal
//! to the cold path building a throwaway testbed for the same spec.
//!
//! The reset invariants this leans on are documented in DESIGN.md §13;
//! the allocation-flatness half of the story lives in the root
//! `tests/pool_steady_state.rs`.

use proptest::prelude::*;
use v6sim::engine::TraceMode;
use v6testbed::scenario::{CellSpec, FaultVariant, OsProfileId, PoisonVariant, TopologyVariant};
use v6testbed::CellArena;

/// Any cell the population sampler could draw: full cross-product of
/// the interned OS table and every topology/poison/fault variant, with
/// an unconstrained seed.
fn arb_cell() -> impl Strategy<Value = CellSpec> {
    (
        prop::sample::select(OsProfileId::all().collect::<Vec<_>>()),
        prop::sample::select(TopologyVariant::ALL.to_vec()),
        prop::sample::select(PoisonVariant::ALL.to_vec()),
        prop::sample::select(FaultVariant::ALL.to_vec()),
        any::<u64>(),
    )
        .prop_map(|(os, topology, poison, fault, seed)| CellSpec {
            os,
            topology,
            poison,
            fault,
            seed,
        })
}

proptest! {
    /// Sequence differential: run a random cell sequence through one
    /// arena (so earlier cells dirty the slots later cells reuse) and
    /// diff every observation against a cold fresh-build run. The
    /// final replay of the first cell under a new seed forces at least
    /// one guaranteed-warm hit per case even when the sampled configs
    /// happen to all differ.
    #[test]
    fn warm_observations_equal_cold_over_random_sequences(
        cells in prop::collection::vec(arb_cell(), 1..3),
        reseed in any::<u64>(),
    ) {
        let mut arena = CellArena::new();
        for spec in &cells {
            prop_assert_eq!(arena.run_observation(*spec), spec.run_observation());
        }
        let replay = CellSpec { seed: reseed, ..cells[0] };
        let warm_before = arena.cells_warm();
        prop_assert_eq!(arena.run_observation(replay), replay.run_observation());
        prop_assert_eq!(arena.cells_warm(), warm_before + 1);
    }
}

/// Full-result differential: the matrix path carries much more state
/// than a census row — label, verdict, per-node census entry, and the
/// complete engine metrics snapshot (frame-pool counters included). One
/// warm run per fault variant on a deliberately dirty arena must
/// reproduce the cold [`ScenarioResult`] field for field, under the
/// traced mode the fleet runner actually uses.
#[test]
fn warm_scenario_results_equal_cold_across_fault_variants() {
    let mut arena = CellArena::new();
    for (i, fault) in FaultVariant::ALL.into_iter().enumerate() {
        let spec = CellSpec {
            // Walk the profile table so successive cells also swap the
            // host out, not just the fault plan.
            os: OsProfileId((i % OsProfileId::all().count()) as u16),
            topology: TopologyVariant::PaperDefault,
            poison: PoisonVariant::WildcardA,
            fault,
            seed: 0xC0FFEE + i as u64,
        };
        let scenario = spec.to_scenario();
        // Dirty the slot first so the diffed run is genuinely warm.
        arena.run_with_trace(&scenario, TraceMode::Hops);
        let warm = arena.run_with_trace(&scenario, TraceMode::Hops);
        let cold = scenario.run_with_trace(TraceMode::Hops);
        assert_eq!(warm, cold, "warm != cold for fault {:?}", fault);
    }
    assert_eq!(arena.cells_cold(), 1, "one build config, one cold build");
    assert_eq!(arena.cells_warm(), 2 * FaultVariant::ALL.len() as u64 - 1);
}
