//! ARP for IPv4-over-Ethernet (RFC 826). The testbed's IPv4 legs (the 5G
//! gateway's NAT44 path and the poisoned-DNS leg) resolve next-hops with ARP;
//! IPv6 uses NDP instead (see [`crate::ndp`]).

use crate::mac::MacAddr;
use crate::{be16, need, WireError, WireResult};
use std::net::Ipv4Addr;

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has (1).
    Request,
    /// Is-at (2).
    Reply,
}

/// An ARP packet for the Ethernet/IPv4 combination (the only one we model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArpPacket {
    /// Request or reply.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Wire size of an Ethernet/IPv4 ARP packet.
    pub const LEN: usize = 28;

    /// Build a who-has request for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Build the is-at reply answering `req`.
    pub fn reply_to(req: &ArpPacket, my_mac: MacAddr) -> Self {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: my_mac,
            sender_ip: req.target_ip,
            target_mac: req.sender_mac,
            target_ip: req.sender_ip,
        }
    }

    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::LEN);
        out.extend_from_slice(&1u16.to_be_bytes()); // htype: Ethernet
        out.extend_from_slice(&0x0800u16.to_be_bytes()); // ptype: IPv4
        out.push(6); // hlen
        out.push(4); // plen
        let op: u16 = match self.op {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        };
        out.extend_from_slice(&op.to_be_bytes());
        out.extend_from_slice(&self.sender_mac.0);
        out.extend_from_slice(&self.sender_ip.octets());
        out.extend_from_slice(&self.target_mac.0);
        out.extend_from_slice(&self.target_ip.octets());
        out
    }

    /// Parse from bytes.
    pub fn decode(buf: &[u8]) -> WireResult<Self> {
        need(buf, Self::LEN, "arp")?;
        let htype = be16(buf, 0, "arp")?;
        let ptype = be16(buf, 2, "arp")?;
        if htype != 1 || ptype != 0x0800 || buf[4] != 6 || buf[5] != 4 {
            return Err(WireError::BadField {
                what: "arp-hw/proto",
                value: u64::from(htype) << 16 | u64::from(ptype),
            });
        }
        let op = match be16(buf, 6, "arp")? {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            v => {
                return Err(WireError::BadField {
                    what: "arp-op",
                    value: u64::from(v),
                })
            }
        };
        Ok(ArpPacket {
            op,
            sender_mac: MacAddr::decode(&buf[8..14])?,
            sender_ip: Ipv4Addr::new(buf[14], buf[15], buf[16], buf[17]),
            target_mac: MacAddr::decode(&buf[18..24])?,
            target_ip: Ipv4Addr::new(buf[24], buf[25], buf[26], buf[27]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_reply_roundtrip() {
        let mac_a = MacAddr::new([2, 0, 0, 0, 0, 0xaa]);
        let mac_b = MacAddr::new([2, 0, 0, 0, 0, 0xbb]);
        let req = ArpPacket::request(
            mac_a,
            "192.168.12.50".parse().unwrap(),
            "192.168.12.1".parse().unwrap(),
        );
        assert_eq!(ArpPacket::decode(&req.encode()).unwrap(), req);
        let rep = ArpPacket::reply_to(&req, mac_b);
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sender_ip, req.target_ip);
        assert_eq!(rep.target_mac, mac_a);
        assert_eq!(ArpPacket::decode(&rep.encode()).unwrap(), rep);
    }

    #[test]
    fn rejects_non_ethernet_ipv4() {
        let req = ArpPacket::request(
            MacAddr::ZERO,
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
        );
        let mut bytes = req.encode();
        bytes[1] = 6; // htype = 6
        assert!(ArpPacket::decode(&bytes).is_err());
        let mut bytes2 = req.encode();
        bytes2[7] = 9; // bogus opcode
        assert!(ArpPacket::decode(&bytes2).is_err());
    }
}
