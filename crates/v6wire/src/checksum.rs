//! The internet checksum (RFC 1071) and the IPv4/IPv6 pseudo-headers used by
//! UDP, TCP, ICMPv4 and ICMPv6, plus the incremental-update rule (RFC 1624)
//! that the SIIT translator in `v6xlat` relies on.
//!
//! Large even-aligned spans are summed by a wide-lane SWAR kernel (eight
//! bytes per step, two masked `u64` lane accumulators) selected at runtime;
//! `SC24_CHECKSUM_KERNEL=scalar|swar` forces a kernel, and
//! [`checksum_with`] exposes both for differential testing. Because the
//! ones'-complement sum is a fold of a plain integer sum, the kernels are
//! bit-for-bit interchangeable — `tests/conformance.rs` proves it on the
//! committed corpus and on random slices.

use std::net::{Ipv4Addr, Ipv6Addr};
use std::sync::OnceLock;

/// Which summation kernel to use for bulk spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Two bytes per step (`u16` words), the reference implementation.
    Scalar,
    /// Eight bytes per step: big-endian `u64` loads split into two masked
    /// 16-bit lane accumulators (SWAR), folded into the running sum per
    /// block.
    Swar,
}

/// The kernel used by [`Checksum::push`] and [`checksum`], resolved once per
/// process: `SC24_CHECKSUM_KERNEL=scalar|swar` overrides, default [`Kernel::Swar`].
pub fn active_kernel() -> Kernel {
    static ACTIVE: OnceLock<Kernel> = OnceLock::new();
    *ACTIVE.get_or_init(
        || match std::env::var("SC24_CHECKSUM_KERNEL").ok().as_deref() {
            Some("scalar") => Kernel::Scalar,
            _ => Kernel::Swar,
        },
    )
}

/// SWAR is only worth the lane bookkeeping beyond this many bytes; below it
/// the scalar loop wins on setup cost. Chosen so 16-byte spans — an IPv6
/// address pushed into a pseudo-header sum — already take the wide path
/// (two chunks amortize the lane fold), while 8-byte UDP headers and
/// smaller fragments stay scalar.
const SWAR_MIN_BYTES: usize = 16;

/// Max 8-byte chunks accumulated before lanes are flushed into the `u64`
/// running sum. Each 16-bit lane has 16 bits of headroom, so up to 2^16 - 1
/// chunk additions can never carry across lanes.
const SWAR_BLOCK_CHUNKS: usize = 0xffff;

const LANE_MASK: u64 = 0x0000_ffff_0000_ffff;

/// Sum `data` (even length) as big-endian 16-bit words using the SWAR
/// kernel, returning the plain (unfolded) integer sum.
fn sum_words_swar(data: &[u8]) -> u64 {
    debug_assert_eq!(data.len() % 2, 0);
    let mut total: u64 = 0;
    let mut chunks = data.chunks_exact(8);
    let mut lo: u64 = 0;
    let mut hi: u64 = 0;
    let mut in_block = 0usize;
    for chunk in &mut chunks {
        let v = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
        lo += v & LANE_MASK;
        hi += (v >> 16) & LANE_MASK;
        in_block += 1;
        if in_block == SWAR_BLOCK_CHUNKS {
            total += (lo & 0xffff_ffff) + (lo >> 32) + (hi & 0xffff_ffff) + (hi >> 32);
            lo = 0;
            hi = 0;
            in_block = 0;
        }
    }
    total += (lo & 0xffff_ffff) + (lo >> 32) + (hi & 0xffff_ffff) + (hi >> 32);
    for pair in chunks.remainder().chunks_exact(2) {
        total += u64::from(u16::from_be_bytes([pair[0], pair[1]]));
    }
    total
}

/// Sum `data` (even length) as big-endian 16-bit words with the scalar
/// reference loop.
fn sum_words_scalar(data: &[u8]) -> u64 {
    debug_assert_eq!(data.len() % 2, 0);
    let mut total: u64 = 0;
    for pair in data.chunks_exact(2) {
        total += u64::from(u16::from_be_bytes([pair[0], pair[1]]));
    }
    total
}

/// Streaming ones'-complement checksum accumulator.
///
/// Feed arbitrary byte slices (odd lengths allowed; a trailing odd byte is
/// padded with zero exactly as RFC 1071 specifies), then call
/// [`Checksum::finish`].
#[derive(Debug, Clone)]
pub struct Checksum {
    sum: u64,
    /// Pending odd byte from a previous `push` whose slice had odd length.
    pending: Option<u8>,
    /// Kernel resolved once at construction: the process-wide `OnceLock`
    /// load is an atomic op per call, which is measurable when every
    /// simulated frame pushes its pseudo-header in 2-byte pieces.
    kernel: Kernel,
}

impl Default for Checksum {
    fn default() -> Self {
        Self {
            sum: 0,
            pending: None,
            kernel: active_kernel(),
        }
    }
}

impl Checksum {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `data` to the running sum using the process-wide kernel.
    #[inline]
    pub fn push(&mut self, data: &[u8]) {
        self.push_with(self.kernel, data);
    }

    /// Add `data` to the running sum with an explicit kernel.
    pub fn push_with(&mut self, kernel: Kernel, data: &[u8]) {
        let mut chunks = data;
        if let Some(hi) = self.pending.take() {
            if chunks.is_empty() {
                self.pending = Some(hi);
                return;
            }
            self.sum += u64::from(u16::from_be_bytes([hi, chunks[0]]));
            chunks = &chunks[1..];
        }
        let even = chunks.len() & !1;
        let (body, tail) = chunks.split_at(even);
        self.sum += match kernel {
            Kernel::Swar if body.len() >= SWAR_MIN_BYTES => sum_words_swar(body),
            _ => sum_words_scalar(body),
        };
        if let [last] = tail {
            self.pending = Some(*last);
        }
    }

    /// Add a big-endian `u16` to the running sum.
    #[inline]
    pub fn push_u16(&mut self, v: u16) {
        // Word-aligned fast path; with a pending odd byte the value's
        // bytes pair across the boundary, so fall back to the slice path.
        if self.pending.is_none() {
            self.sum += u64::from(v);
        } else {
            self.push(&v.to_be_bytes());
        }
    }

    /// Add a big-endian `u32` to the running sum.
    #[inline]
    pub fn push_u32(&mut self, v: u32) {
        if self.pending.is_none() {
            self.sum += u64::from(v >> 16) + u64::from(v & 0xffff);
        } else {
            self.push(&v.to_be_bytes());
        }
    }

    /// Fold carries and return the ones'-complement of the sum.
    pub fn finish(mut self) -> u16 {
        if let Some(hi) = self.pending.take() {
            self.sum += u64::from(u16::from_be_bytes([hi, 0]));
        }
        let mut s = self.sum;
        while s >> 16 != 0 {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16)
    }
}

/// One-shot checksum of a byte slice using the process-wide kernel.
pub fn checksum(data: &[u8]) -> u16 {
    checksum_with(active_kernel(), data)
}

/// One-shot checksum of a byte slice with an explicit kernel — the
/// differential-testing entry point.
pub fn checksum_with(kernel: Kernel, data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.push_with(kernel, data);
    c.finish()
}

/// Start an accumulator pre-loaded with the IPv4 pseudo-header
/// (RFC 768 / RFC 793): src, dst, zero+protocol, upper-layer length.
pub fn pseudo_v4(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, len: u16) -> Checksum {
    let mut c = Checksum::new();
    c.push(&src.octets());
    c.push(&dst.octets());
    c.push(&[0, proto]);
    c.push_u16(len);
    c
}

/// Start an accumulator pre-loaded with the IPv6 pseudo-header (RFC 8200 §8.1).
pub fn pseudo_v6(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, len: u32) -> Checksum {
    let mut c = Checksum::new();
    c.push(&src.octets());
    c.push(&dst.octets());
    c.push_u32(len);
    c.push(&[0, 0, 0, next_header]);
    c
}

/// RFC 1624 incremental checksum update: given an existing checksum `old_sum`
/// over data in which 16-bit word `old` is replaced by `new`, return the
/// updated checksum. Used by the stateless translator to adjust transport
/// checksums without touching the payload.
pub fn incremental_update(old_sum: u16, old: u16, new: u16) -> u16 {
    // HC' = ~(~HC + ~m + m')  (RFC 1624 eqn. 3)
    let mut s = u32::from(!old_sum) + u32::from(!old) + u32::from(new);
    while s >> 16 != 0 {
        s = (s & 0xffff) + (s >> 16);
    }
    !(s as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // RFC 1071 §3 example words: 0x0001, 0xf203, 0xf4f5, 0xf6f7 -> sum 0xddf2,
        // checksum = ~0xddf2 = 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), !0xab00);
        // Split across pushes in awkward places: same result.
        let mut c = Checksum::new();
        c.push(&[0x12]);
        c.push(&[0x34, 0x56]);
        c.push(&[0x78]);
        assert_eq!(c.finish(), checksum(&[0x12, 0x34, 0x56, 0x78]));
    }

    #[test]
    fn word_pushes_match_slice_pushes() {
        // Word-aligned: the u16/u32 fast paths must equal slice pushes.
        let mut a = Checksum::new();
        a.push_u16(0x1234);
        a.push_u32(0xdead_beef);
        let mut b = Checksum::new();
        b.push(&[0x12, 0x34, 0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(a.finish(), b.finish());

        // Straddling a pending odd byte: bytes re-pair across the
        // boundary, exercising the fallback.
        let mut a = Checksum::new();
        a.push(&[0xab]);
        a.push_u16(0x1234);
        a.push_u32(0xdead_beef);
        a.push(&[0x99]);
        let mut b = Checksum::new();
        b.push(&[0xab, 0x12, 0x34, 0xde, 0xad, 0xbe, 0xef, 0x99]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn split_invariance() {
        let data: Vec<u8> = (0u8..=255).collect();
        let whole = checksum(&data);
        for split in [1usize, 3, 7, 128, 255] {
            let mut c = Checksum::new();
            c.push(&data[..split]);
            c.push(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn kernels_agree_on_all_lengths() {
        // Every length 0..200 with varied content, including lengths around
        // the SWAR threshold and non-multiple-of-8 tails.
        let data: Vec<u8> = (0..200u32)
            .map(|i| (i.wrapping_mul(37) ^ 0x5a) as u8)
            .collect();
        for len in 0..=data.len() {
            assert_eq!(
                checksum_with(Kernel::Scalar, &data[..len]),
                checksum_with(Kernel::Swar, &data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn kernels_agree_on_saturating_content() {
        // All-0xff content maximizes per-lane carries.
        let data = vec![0xffu8; 4096];
        assert_eq!(
            checksum_with(Kernel::Scalar, &data),
            checksum_with(Kernel::Swar, &data)
        );
    }

    #[test]
    fn swar_block_flush_is_exact() {
        // Past one SWAR block (0xffff chunks = 524 280 bytes) the lane
        // accumulators must flush without losing carries.
        let data = vec![0xffu8; SWAR_BLOCK_CHUNKS * 8 + 16];
        assert_eq!(
            checksum_with(Kernel::Scalar, &data),
            checksum_with(Kernel::Swar, &data)
        );
    }

    #[test]
    fn verification_of_valid_data_yields_zero_complement() {
        // A buffer containing its own correct checksum sums to 0xffff,
        // i.e. finish() == 0.
        let mut data = vec![0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06];
        let ck = checksum(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        assert_eq!(checksum(&data), 0);
    }

    #[test]
    fn incremental_matches_full_recompute() {
        let mut data = vec![0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc];
        let before = checksum(&data);
        // Replace word at offset 2 (0x5678) with 0xcafe.
        let updated = incremental_update(before, 0x5678, 0xcafe);
        data[2] = 0xca;
        data[3] = 0xfe;
        assert_eq!(updated, checksum(&data));
    }

    #[test]
    fn pseudo_headers_differ_by_family() {
        let v4 = pseudo_v4(
            "192.0.2.1".parse().unwrap(),
            "198.51.100.2".parse().unwrap(),
            17,
            8,
        )
        .finish();
        let v6 = pseudo_v6(
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            17,
            8,
        )
        .finish();
        assert_ne!(v4, v6);
    }
}
