//! The internet checksum (RFC 1071) and the IPv4/IPv6 pseudo-headers used by
//! UDP, TCP, ICMPv4 and ICMPv6, plus the incremental-update rule (RFC 1624)
//! that the SIIT translator in `v6xlat` relies on.

use std::net::{Ipv4Addr, Ipv6Addr};

/// Streaming ones'-complement checksum accumulator.
///
/// Feed arbitrary byte slices (odd lengths allowed; a trailing odd byte is
/// padded with zero exactly as RFC 1071 specifies), then call
/// [`Checksum::finish`].
#[derive(Debug, Clone, Default)]
pub struct Checksum {
    sum: u32,
    /// Pending odd byte from a previous `push` whose slice had odd length.
    pending: Option<u8>,
}

impl Checksum {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `data` to the running sum.
    pub fn push(&mut self, data: &[u8]) {
        let mut chunks = data;
        if let Some(hi) = self.pending.take() {
            if chunks.is_empty() {
                self.pending = Some(hi);
                return;
            }
            self.sum += u32::from(u16::from_be_bytes([hi, chunks[0]]));
            chunks = &chunks[1..];
        }
        let mut iter = chunks.chunks_exact(2);
        for pair in &mut iter {
            self.sum += u32::from(u16::from_be_bytes([pair[0], pair[1]]));
        }
        if let [last] = iter.remainder() {
            self.pending = Some(*last);
        }
    }

    /// Add a big-endian `u16` to the running sum.
    pub fn push_u16(&mut self, v: u16) {
        self.push(&v.to_be_bytes());
    }

    /// Add a big-endian `u32` to the running sum.
    pub fn push_u32(&mut self, v: u32) {
        self.push(&v.to_be_bytes());
    }

    /// Fold carries and return the ones'-complement of the sum.
    pub fn finish(mut self) -> u16 {
        if let Some(hi) = self.pending.take() {
            self.sum += u32::from(u16::from_be_bytes([hi, 0]));
        }
        let mut s = self.sum;
        while s >> 16 != 0 {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16)
    }
}

/// One-shot checksum of a byte slice.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.push(data);
    c.finish()
}

/// Start an accumulator pre-loaded with the IPv4 pseudo-header
/// (RFC 768 / RFC 793): src, dst, zero+protocol, upper-layer length.
pub fn pseudo_v4(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, len: u16) -> Checksum {
    let mut c = Checksum::new();
    c.push(&src.octets());
    c.push(&dst.octets());
    c.push(&[0, proto]);
    c.push_u16(len);
    c
}

/// Start an accumulator pre-loaded with the IPv6 pseudo-header (RFC 8200 §8.1).
pub fn pseudo_v6(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, len: u32) -> Checksum {
    let mut c = Checksum::new();
    c.push(&src.octets());
    c.push(&dst.octets());
    c.push_u32(len);
    c.push(&[0, 0, 0, next_header]);
    c
}

/// RFC 1624 incremental checksum update: given an existing checksum `old_sum`
/// over data in which 16-bit word `old` is replaced by `new`, return the
/// updated checksum. Used by the stateless translator to adjust transport
/// checksums without touching the payload.
pub fn incremental_update(old_sum: u16, old: u16, new: u16) -> u16 {
    // HC' = ~(~HC + ~m + m')  (RFC 1624 eqn. 3)
    let mut s = u32::from(!old_sum) + u32::from(!old) + u32::from(new);
    while s >> 16 != 0 {
        s = (s & 0xffff) + (s >> 16);
    }
    !(s as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // RFC 1071 §3 example words: 0x0001, 0xf203, 0xf4f5, 0xf6f7 -> sum 0xddf2,
        // checksum = ~0xddf2 = 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), !0xab00);
        // Split across pushes in awkward places: same result.
        let mut c = Checksum::new();
        c.push(&[0x12]);
        c.push(&[0x34, 0x56]);
        c.push(&[0x78]);
        assert_eq!(c.finish(), checksum(&[0x12, 0x34, 0x56, 0x78]));
    }

    #[test]
    fn split_invariance() {
        let data: Vec<u8> = (0u8..=255).collect();
        let whole = checksum(&data);
        for split in [1usize, 3, 7, 128, 255] {
            let mut c = Checksum::new();
            c.push(&data[..split]);
            c.push(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn verification_of_valid_data_yields_zero_complement() {
        // A buffer containing its own correct checksum sums to 0xffff,
        // i.e. finish() == 0.
        let mut data = vec![0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06];
        let ck = checksum(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        assert_eq!(checksum(&data), 0);
    }

    #[test]
    fn incremental_matches_full_recompute() {
        let mut data = vec![0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc];
        let before = checksum(&data);
        // Replace word at offset 2 (0x5678) with 0xcafe.
        let updated = incremental_update(before, 0x5678, 0xcafe);
        data[2] = 0xca;
        data[3] = 0xfe;
        assert_eq!(updated, checksum(&data));
    }

    #[test]
    fn pseudo_headers_differ_by_family() {
        let v4 = pseudo_v4(
            "192.0.2.1".parse().unwrap(),
            "198.51.100.2".parse().unwrap(),
            17,
            8,
        )
        .finish();
        let v6 = pseudo_v6(
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            17,
            8,
        )
        .finish();
        assert_ne!(v4, v6);
    }
}
