//! Shared clamped/saturating arithmetic used by the latency sketches and
//! the DNS TTL caches.
//!
//! Two independent copies of the nearest-rank percentile clamp grew in
//! `v6fleet` (the sorted-sample path and the bucketed-sketch path), and the
//! DNS negative caches each re-derived their own TTL expiry math. All of
//! them funnel through here so the clamping rules stay identical.

/// Nearest-rank index (0-based) into a collection of `count` sorted samples
/// for quantile `q` in `[0, 1]`.
///
/// The 1-based rank `ceil(count * q)` is clamped to `[1, count]`, so `q = 0`
/// selects the minimum and any `q >= 1` (or a NaN-free overshoot) selects
/// the maximum. Returns `None` for an empty collection.
pub fn nearest_rank_index(count: usize, q: f64) -> Option<usize> {
    if count == 0 {
        return None;
    }
    let rank = ((count as f64 * q).ceil() as u64).clamp(1, count as u64);
    Some((rank - 1) as usize)
}

/// RFC 2181 §8: a TTL with the high bit set is "treated as if it were zero".
///
/// SOA `minimum` fields come straight off the wire (or a zone master file)
/// as a full `u32`; clamping here keeps downstream expiry math from
/// treating a bogus 4-billion-second TTL as a cache-forever entry.
pub fn clamp_ttl(ttl: u32) -> u32 {
    if ttl & 0x8000_0000 != 0 {
        0
    } else {
        ttl
    }
}

/// RFC 2308 §5 negative-caching TTL: `min(SOA TTL, SOA.minimum)`, with both
/// inputs first passed through the RFC 2181 clamp.
pub fn negative_ttl(soa_ttl: u32, soa_minimum: u32) -> u32 {
    clamp_ttl(soa_ttl).min(clamp_ttl(soa_minimum))
}

/// Absolute expiry time for a TTL starting at `now` (seconds), saturating
/// instead of wrapping near `u64::MAX`.
pub fn expiry(now: u64, ttl: u32) -> u64 {
    now.saturating_add(u64::from(clamp_ttl(ttl)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_clamps_both_ends() {
        assert_eq!(nearest_rank_index(0, 0.5), None);
        assert_eq!(nearest_rank_index(10, 0.0), Some(0));
        assert_eq!(nearest_rank_index(10, 1.0), Some(9));
        assert_eq!(nearest_rank_index(10, 2.5), Some(9), "overshoot clamps");
        assert_eq!(nearest_rank_index(10, 0.5), Some(4));
        assert_eq!(nearest_rank_index(10, 0.95), Some(9));
        assert_eq!(nearest_rank_index(1, 0.99), Some(0));
    }

    #[test]
    fn rfc2181_high_bit_means_zero() {
        assert_eq!(clamp_ttl(0), 0);
        assert_eq!(clamp_ttl(300), 300);
        assert_eq!(clamp_ttl(0x7fff_ffff), 0x7fff_ffff);
        assert_eq!(clamp_ttl(0x8000_0000), 0);
        assert_eq!(clamp_ttl(u32::MAX), 0);
    }

    #[test]
    fn negative_ttl_clamps_each_side_first() {
        assert_eq!(negative_ttl(900, 300), 300);
        assert_eq!(negative_ttl(60, 300), 60);
        // A bogus SOA minimum with the high bit set no longer wins the min.
        assert_eq!(negative_ttl(900, u32::MAX), 0);
        assert_eq!(negative_ttl(u32::MAX, 300), 0);
    }

    #[test]
    fn expiry_saturates() {
        assert_eq!(expiry(100, 60), 160);
        assert_eq!(expiry(u64::MAX - 10, 300), u64::MAX);
        assert_eq!(expiry(5, u32::MAX), 5, "clamped TTL first");
    }
}
