//! Ethernet II framing.

use crate::mac::MacAddr;
use crate::{be16, WireError, WireResult};

/// EtherType values the testbed carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// 0x0800
    Ipv4,
    /// 0x0806
    Arp,
    /// 0x86dd
    Ipv6,
    /// Anything else (kept verbatim so switches can forward unknown types).
    Other(u16),
}

impl EtherType {
    /// The 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Other(v) => v,
        }
    }

    /// Classify a 16-bit wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86dd => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II frame (no FCS — the simulator's links are reliable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
    /// L3 payload bytes.
    pub payload: Vec<u8>,
}

impl EthernetFrame {
    /// Header length in bytes.
    pub const HEADER_LEN: usize = 14;

    /// Build a frame.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Vec<u8>) -> Self {
        EthernetFrame {
            dst,
            src,
            ethertype,
            payload,
        }
    }

    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.to_u16().to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse from bytes.
    pub fn decode(buf: &[u8]) -> WireResult<Self> {
        if buf.len() < Self::HEADER_LEN {
            return Err(WireError::Truncated {
                what: "ethernet",
                need: Self::HEADER_LEN,
                have: buf.len(),
            });
        }
        let dst = MacAddr::decode(&buf[0..6])?;
        let src = MacAddr::decode(&buf[6..12])?;
        let ethertype = EtherType::from_u16(be16(buf, 12, "ethernet")?);
        Ok(EthernetFrame {
            dst,
            src,
            ethertype,
            payload: buf[14..].to_vec(),
        })
    }

    /// True if addressed to `mac`, broadcast, or any group address
    /// (simulated NICs run in "accept all multicast" mode — the host stack
    /// filters by group membership at L3).
    pub fn accepts(&self, mac: MacAddr) -> bool {
        self.dst == mac || self.dst.is_multicast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(last: u8) -> MacAddr {
        MacAddr::new([0x02, 0, 0, 0, 0, last])
    }

    #[test]
    fn roundtrip() {
        let f = EthernetFrame::new(mac(1), mac(2), EtherType::Ipv6, vec![1, 2, 3, 4]);
        let bytes = f.encode();
        assert_eq!(EthernetFrame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn ethertype_mapping() {
        for (v, t) in [
            (0x0800u16, EtherType::Ipv4),
            (0x0806, EtherType::Arp),
            (0x86dd, EtherType::Ipv6),
            (0x88cc, EtherType::Other(0x88cc)),
        ] {
            assert_eq!(EtherType::from_u16(v), t);
            assert_eq!(t.to_u16(), v);
        }
    }

    #[test]
    fn accepts_unicast_and_group() {
        let f = EthernetFrame::new(mac(1), mac(2), EtherType::Ipv4, vec![]);
        assert!(f.accepts(mac(1)));
        assert!(!f.accepts(mac(9)));
        let b = EthernetFrame::new(MacAddr::BROADCAST, mac(2), EtherType::Ipv4, vec![]);
        assert!(b.accepts(mac(9)));
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            EthernetFrame::decode(&[0u8; 13]),
            Err(WireError::Truncated { .. })
        ));
    }
}
