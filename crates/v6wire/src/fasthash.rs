//! A fast, deterministic hasher for simulator-internal maps.
//!
//! The hot path hashes tiny fixed keys — MAC addresses, socket ports,
//! `(proto, addr, port)` NAT tuples — thousands of times per simulated
//! cell, and std's default SipHash-1-3 shows up in profiles as pure
//! overhead. This is the classic Fx multiply-rotate hash (as used by
//! rustc for its interner tables): one rotate, one xor, one multiply
//! per word. It is *not* DoS-resistant, which is fine here: every key
//! comes from the simulation itself, never from untrusted input.
//!
//! Unlike `RandomState`, the hash is identical in every process. Note
//! that map *iteration order* must already be unobservable in any map
//! that swaps to this hasher — under `RandomState` the order differs
//! per process, so an order-dependent map would have broken run-to-run
//! determinism long before this hasher existed.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for [`FxHasher`]; zero-sized, `Default`-constructed.
pub type FastBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` on the Fx hash — drop-in for simulator-internal tables
/// whose keys are simulation-generated (never attacker-controlled).
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// A `HashSet` on the Fx hash; same caveats as [`FastMap`].
pub type FastSet<T> = std::collections::HashSet<T, FastBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx multiply-rotate hasher state. One `u64` of state; each written
/// word folds in as `rotl(h, 5) ^ w` then a wrapping multiply by a
/// fixed odd constant.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length into the tail word so prefixes of each
            // other ("ab" vs "ab\0") still hash apart.
            tail[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(b"2001:db8::1"), hash_of(b"2001:db8::1"));
    }

    #[test]
    fn distinguishes_zero_padded_prefixes() {
        assert_ne!(hash_of(b"ab"), hash_of(b"ab\0"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
    }

    #[test]
    fn map_is_usable_with_small_keys() {
        let mut m: FastMap<(u8, u16), u32> = FastMap::default();
        for proto in 0..4u8 {
            for port in 1000..1100u16 {
                m.insert((proto, port), u32::from(port) + u32::from(proto));
            }
        }
        assert_eq!(m.len(), 400);
        assert_eq!(m.get(&(2, 1050)), Some(&1052));
    }
}
