//! ICMPv4 (RFC 792): echo, destination-unreachable and time-exceeded — the
//! message types the NAT64/NAT44 paths and ping-based experiments need.

use crate::checksum::checksum;
use crate::{be16, need, WireError, WireResult};

/// A decoded ICMPv4 message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Icmpv4Message {
    /// Echo request (type 8).
    EchoRequest {
        /// Identifier (NAT64 treats this like a port).
        ident: u16,
        /// Sequence number.
        seq: u16,
        /// Payload.
        payload: Vec<u8>,
    },
    /// Echo reply (type 0).
    EchoReply {
        /// Identifier.
        ident: u16,
        /// Sequence number.
        seq: u16,
        /// Payload.
        payload: Vec<u8>,
    },
    /// Destination unreachable (type 3) carrying the offending header.
    DestinationUnreachable {
        /// Code (0 net, 1 host, 3 port, 4 frag-needed, ...).
        code: u8,
        /// Invoking IP header + 8 bytes, as required by RFC 792.
        invoking: Vec<u8>,
    },
    /// Time exceeded (type 11).
    TimeExceeded {
        /// Code (0 TTL exceeded in transit).
        code: u8,
        /// Invoking packet excerpt.
        invoking: Vec<u8>,
    },
}

impl Icmpv4Message {
    /// Serialize with checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Icmpv4Message::EchoRequest {
                ident,
                seq,
                payload,
            } => {
                out.push(8);
                out.push(0);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&ident.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(payload);
            }
            Icmpv4Message::EchoReply {
                ident,
                seq,
                payload,
            } => {
                out.push(0);
                out.push(0);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&ident.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(payload);
            }
            Icmpv4Message::DestinationUnreachable { code, invoking } => {
                out.push(3);
                out.push(*code);
                out.extend_from_slice(&[0, 0, 0, 0, 0, 0]);
                out.extend_from_slice(invoking);
            }
            Icmpv4Message::TimeExceeded { code, invoking } => {
                out.push(11);
                out.push(*code);
                out.extend_from_slice(&[0, 0, 0, 0, 0, 0]);
                out.extend_from_slice(invoking);
            }
        }
        let ck = checksum(&out);
        out[2..4].copy_from_slice(&ck.to_be_bytes());
        out
    }

    /// Parse and verify checksum.
    pub fn decode(buf: &[u8]) -> WireResult<Self> {
        need(buf, 8, "icmpv4")?;
        if checksum(buf) != 0 {
            let mut zeroed = buf.to_vec();
            zeroed[2] = 0;
            zeroed[3] = 0;
            return Err(WireError::BadChecksum {
                what: "icmpv4",
                found: be16(buf, 2, "icmpv4")?,
                expected: checksum(&zeroed),
            });
        }
        match (buf[0], buf[1]) {
            (8, 0) => Ok(Icmpv4Message::EchoRequest {
                ident: be16(buf, 4, "icmpv4")?,
                seq: be16(buf, 6, "icmpv4")?,
                payload: buf[8..].to_vec(),
            }),
            (0, 0) => Ok(Icmpv4Message::EchoReply {
                ident: be16(buf, 4, "icmpv4")?,
                seq: be16(buf, 6, "icmpv4")?,
                payload: buf[8..].to_vec(),
            }),
            (3, code) => Ok(Icmpv4Message::DestinationUnreachable {
                code,
                invoking: buf[8..].to_vec(),
            }),
            (11, code) => Ok(Icmpv4Message::TimeExceeded {
                code,
                invoking: buf[8..].to_vec(),
            }),
            (t, _) => Err(WireError::BadField {
                what: "icmpv4-type",
                value: u64::from(t),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let m = Icmpv4Message::EchoRequest {
            ident: 0x1234,
            seq: 7,
            payload: b"abcdefgh".to_vec(),
        };
        assert_eq!(Icmpv4Message::decode(&m.encode()).unwrap(), m);
        let r = Icmpv4Message::EchoReply {
            ident: 0x1234,
            seq: 7,
            payload: b"abcdefgh".to_vec(),
        };
        assert_eq!(Icmpv4Message::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn unreachable_roundtrip() {
        let m = Icmpv4Message::DestinationUnreachable {
            code: 3,
            invoking: vec![0x45; 28],
        };
        assert_eq!(Icmpv4Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let m = Icmpv4Message::EchoRequest {
            ident: 1,
            seq: 1,
            payload: vec![],
        };
        let mut b = m.encode();
        b[5] ^= 1;
        assert!(matches!(
            Icmpv4Message::decode(&b),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn unknown_type_rejected() {
        // Type 13 (timestamp) — unsupported.
        let mut b = vec![13u8, 0, 0, 0, 0, 0, 0, 0];
        let ck = checksum(&b);
        b[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(
            Icmpv4Message::decode(&b),
            Err(WireError::BadField { .. })
        ));
    }
}
