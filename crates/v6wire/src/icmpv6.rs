//! ICMPv6 (RFC 4443) envelope: echo, destination-unreachable, and the four
//! NDP messages from [`crate::ndp`]. The ICMPv6 checksum covers the IPv6
//! pseudo-header, so encode/decode take the source and destination addresses.

use crate::checksum::pseudo_v6;
use crate::ndp::{
    NdpOption, NeighborAdvertisement, NeighborSolicitation, RouterAdvertisement, RouterSolicitation,
};
use crate::{be16, be32, need, WireError, WireResult};
use std::net::Ipv6Addr;

/// A decoded ICMPv6 message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Icmpv6Message {
    /// Type 1: destination unreachable.
    DestinationUnreachable {
        /// Code (0 no-route, 3 address-unreachable, 4 port-unreachable...).
        code: u8,
        /// As much of the invoking packet as fits.
        invoking: Vec<u8>,
    },
    /// Type 128: echo request.
    EchoRequest {
        /// Identifier.
        ident: u16,
        /// Sequence.
        seq: u16,
        /// Payload.
        payload: Vec<u8>,
    },
    /// Type 129: echo reply.
    EchoReply {
        /// Identifier.
        ident: u16,
        /// Sequence.
        seq: u16,
        /// Payload.
        payload: Vec<u8>,
    },
    /// Type 133: router solicitation.
    RouterSolicitation(RouterSolicitation),
    /// Type 134: router advertisement.
    RouterAdvertisement(RouterAdvertisement),
    /// Type 135: neighbor solicitation.
    NeighborSolicitation(NeighborSolicitation),
    /// Type 136: neighbor advertisement.
    NeighborAdvertisement(NeighborAdvertisement),
}

impl Icmpv6Message {
    /// Serialize with the pseudo-header checksum for `src`→`dst`.
    pub fn encode(&self, src: Ipv6Addr, dst: Ipv6Addr) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Icmpv6Message::DestinationUnreachable { code, invoking } => {
                out.extend_from_slice(&[1, *code, 0, 0, 0, 0, 0, 0]);
                out.extend_from_slice(invoking);
            }
            Icmpv6Message::EchoRequest {
                ident,
                seq,
                payload,
            } => {
                out.extend_from_slice(&[128, 0, 0, 0]);
                out.extend_from_slice(&ident.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(payload);
            }
            Icmpv6Message::EchoReply {
                ident,
                seq,
                payload,
            } => {
                out.extend_from_slice(&[129, 0, 0, 0]);
                out.extend_from_slice(&ident.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(payload);
            }
            Icmpv6Message::RouterSolicitation(rs) => {
                out.extend_from_slice(&[133, 0, 0, 0, 0, 0, 0, 0]);
                for opt in &rs.options {
                    opt.encode(&mut out);
                }
            }
            Icmpv6Message::RouterAdvertisement(ra) => {
                out.extend_from_slice(&[134, 0, 0, 0]);
                ra.encode_body(&mut out);
            }
            Icmpv6Message::NeighborSolicitation(ns) => {
                out.extend_from_slice(&[135, 0, 0, 0, 0, 0, 0, 0]);
                out.extend_from_slice(&ns.target.octets());
                for opt in &ns.options {
                    opt.encode(&mut out);
                }
            }
            Icmpv6Message::NeighborAdvertisement(na) => {
                out.extend_from_slice(&[136, 0, 0, 0]);
                let mut flags = 0u8;
                if na.router {
                    flags |= 0x80;
                }
                if na.solicited {
                    flags |= 0x40;
                }
                if na.override_flag {
                    flags |= 0x20;
                }
                out.push(flags);
                out.extend_from_slice(&[0, 0, 0]);
                out.extend_from_slice(&na.target.octets());
                for opt in &na.options {
                    opt.encode(&mut out);
                }
            }
        }
        let mut ck = pseudo_v6(src, dst, crate::ipv4::proto::ICMPV6, out.len() as u32);
        ck.push(&out);
        let sum = ck.finish();
        out[2..4].copy_from_slice(&sum.to_be_bytes());
        out
    }

    /// Parse and verify against the pseudo-header for `src`→`dst`.
    pub fn decode(buf: &[u8], src: Ipv6Addr, dst: Ipv6Addr) -> WireResult<Self> {
        need(buf, 4, "icmpv6")?;
        let mut ck = pseudo_v6(src, dst, crate::ipv4::proto::ICMPV6, buf.len() as u32);
        ck.push(buf);
        if ck.finish() != 0 {
            let mut zeroed = buf.to_vec();
            zeroed[2] = 0;
            zeroed[3] = 0;
            let mut again = pseudo_v6(src, dst, crate::ipv4::proto::ICMPV6, buf.len() as u32);
            again.push(&zeroed);
            return Err(WireError::BadChecksum {
                what: "icmpv6",
                found: be16(buf, 2, "icmpv6")?,
                expected: again.finish(),
            });
        }
        let read_target = |off: usize| -> WireResult<Ipv6Addr> {
            need(buf, off + 16, "icmpv6-target")?;
            let mut a = [0u8; 16];
            a.copy_from_slice(&buf[off..off + 16]);
            Ok(Ipv6Addr::from(a))
        };
        match buf[0] {
            1 => {
                need(buf, 8, "icmpv6-unreach")?;
                Ok(Icmpv6Message::DestinationUnreachable {
                    code: buf[1],
                    invoking: buf[8..].to_vec(),
                })
            }
            128 | 129 => {
                need(buf, 8, "icmpv6-echo")?;
                let ident = be16(buf, 4, "icmpv6-echo")?;
                let seq = be16(buf, 6, "icmpv6-echo")?;
                let payload = buf[8..].to_vec();
                if buf[0] == 128 {
                    Ok(Icmpv6Message::EchoRequest {
                        ident,
                        seq,
                        payload,
                    })
                } else {
                    Ok(Icmpv6Message::EchoReply {
                        ident,
                        seq,
                        payload,
                    })
                }
            }
            133 => {
                need(buf, 8, "icmpv6-rs")?;
                Ok(Icmpv6Message::RouterSolicitation(RouterSolicitation {
                    options: NdpOption::decode_all(&buf[8..])?,
                }))
            }
            134 => Ok(Icmpv6Message::RouterAdvertisement(
                RouterAdvertisement::decode_body(&buf[4..])?,
            )),
            135 => {
                need(buf, 24, "icmpv6-ns")?;
                Ok(Icmpv6Message::NeighborSolicitation(NeighborSolicitation {
                    target: read_target(8)?,
                    options: NdpOption::decode_all(&buf[24..])?,
                }))
            }
            136 => {
                need(buf, 24, "icmpv6-na")?;
                // Re-read the reserved word to keep decode strictness honest.
                let _reserved = be32(buf, 4, "icmpv6-na")? & 0x1fff_ffff;
                Ok(Icmpv6Message::NeighborAdvertisement(
                    NeighborAdvertisement {
                        router: buf[4] & 0x80 != 0,
                        solicited: buf[4] & 0x40 != 0,
                        override_flag: buf[4] & 0x20 != 0,
                        target: read_target(8)?,
                        options: NdpOption::decode_all(&buf[24..])?,
                    },
                ))
            }
            t => Err(WireError::BadField {
                what: "icmpv6-type",
                value: u64::from(t),
            }),
        }
    }
}

/// The all-nodes link-local multicast group `ff02::1`.
pub fn all_nodes() -> Ipv6Addr {
    Ipv6Addr::new(0xff02, 0, 0, 0, 0, 0, 0, 1)
}

/// The all-routers link-local multicast group `ff02::2`.
pub fn all_routers() -> Ipv6Addr {
    Ipv6Addr::new(0xff02, 0, 0, 0, 0, 0, 0, 2)
}

/// The solicited-node multicast group for `addr` (RFC 4291 §2.7.1).
pub fn solicited_node(addr: Ipv6Addr) -> Ipv6Addr {
    let o = addr.octets();
    Ipv6Addr::new(
        0xff02,
        0,
        0,
        0,
        0,
        1,
        0xff00 | u16::from(o[13]),
        (u16::from(o[14]) << 8) | u16::from(o[15]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::MacAddr;
    use crate::ndp::RouterPreference;

    fn ll(last: u16) -> Ipv6Addr {
        format!("fe80::{last:x}").parse().unwrap()
    }

    #[test]
    fn echo_roundtrip() {
        let m = Icmpv6Message::EchoRequest {
            ident: 77,
            seq: 1,
            payload: b"ping sc24.supercomputing.org".to_vec(),
        };
        let bytes = m.encode(ll(1), "64:ff9b::be5c:9e04".parse().unwrap());
        let got =
            Icmpv6Message::decode(&bytes, ll(1), "64:ff9b::be5c:9e04".parse().unwrap()).unwrap();
        assert_eq!(got, m);
    }

    #[test]
    fn ra_full_roundtrip() {
        let mut ra = RouterAdvertisement::new(1800);
        ra.preference = RouterPreference::Low;
        ra.options.push(NdpOption::Rdnss {
            lifetime: 300,
            servers: vec!["fd00:976a::9".parse().unwrap()],
        });
        let m = Icmpv6Message::RouterAdvertisement(ra);
        let bytes = m.encode(ll(1), all_nodes());
        assert_eq!(
            Icmpv6Message::decode(&bytes, ll(1), all_nodes()).unwrap(),
            m
        );
    }

    #[test]
    fn ns_na_roundtrip() {
        let target: Ipv6Addr = "fd00:976a::9".parse().unwrap();
        let ns = Icmpv6Message::NeighborSolicitation(NeighborSolicitation {
            target,
            options: vec![NdpOption::SourceLinkLayer(MacAddr::new([2, 0, 0, 0, 0, 5]))],
        });
        let bytes = ns.encode(ll(5), solicited_node(target));
        assert_eq!(
            Icmpv6Message::decode(&bytes, ll(5), solicited_node(target)).unwrap(),
            ns
        );
        let na = Icmpv6Message::NeighborAdvertisement(NeighborAdvertisement {
            router: false,
            solicited: true,
            override_flag: true,
            target,
            options: vec![NdpOption::TargetLinkLayer(MacAddr::new([2, 0, 0, 0, 0, 9]))],
        });
        let bytes = na.encode(target, ll(5));
        assert_eq!(Icmpv6Message::decode(&bytes, target, ll(5)).unwrap(), na);
    }

    #[test]
    fn checksum_binds_addresses() {
        let m = Icmpv6Message::EchoRequest {
            ident: 1,
            seq: 1,
            payload: vec![],
        };
        let bytes = m.encode(ll(1), ll(2));
        assert!(Icmpv6Message::decode(&bytes, ll(1), ll(3)).is_err());
    }

    #[test]
    fn solicited_node_group() {
        let a: Ipv6Addr = "fd00:976a::eccc:47e6:51a9:6090".parse().unwrap();
        assert_eq!(
            solicited_node(a),
            "ff02::1:ffa9:6090".parse::<Ipv6Addr>().unwrap()
        );
    }
}
