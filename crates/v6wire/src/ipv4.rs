//! IPv4 (RFC 791) header encode/decode with header checksum.

use crate::checksum::checksum;
use crate::{be16, need, WireError, WireResult};
use std::net::Ipv4Addr;

/// IP protocol numbers shared by IPv4's `protocol` and IPv6's `next header`.
pub mod proto {
    /// ICMPv4.
    pub const ICMP: u8 = 1;
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
    /// ICMPv6.
    pub const ICMPV6: u8 = 58;
    /// No next header (IPv6).
    pub const NO_NEXT: u8 = 59;
}

/// A decoded IPv4 packet. Options are not modelled (the testbed never emits
/// them); a packet carrying options is still accepted and the options bytes
/// are skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Differentiated services code point + ECN byte.
    pub dscp_ecn: u8,
    /// Identification field (used by fragmentation; we carry it verbatim).
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol (see [`proto`]).
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport payload.
    pub payload: Vec<u8>,
}

impl Ipv4Packet {
    /// Minimum (option-less) header length.
    pub const HEADER_LEN: usize = 20;

    /// Build a packet with common defaults (TTL 64, DF set).
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, payload: Vec<u8>) -> Self {
        Ipv4Packet {
            dscp_ecn: 0,
            identification: 0,
            dont_fragment: true,
            ttl: 64,
            protocol,
            src,
            dst,
            payload,
        }
    }

    /// Serialize to bytes, computing the header checksum.
    pub fn encode(&self) -> Vec<u8> {
        let total_len = (Self::HEADER_LEN + self.payload.len()) as u16;
        let mut out = Vec::with_capacity(total_len as usize);
        out.push(0x45); // version 4, IHL 5
        out.push(self.dscp_ecn);
        out.extend_from_slice(&total_len.to_be_bytes());
        out.extend_from_slice(&self.identification.to_be_bytes());
        let flags_frag: u16 = if self.dont_fragment { 0x4000 } else { 0 };
        out.extend_from_slice(&flags_frag.to_be_bytes());
        out.push(self.ttl);
        out.push(self.protocol);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        let ck = checksum(&out[..Self::HEADER_LEN]);
        out[10..12].copy_from_slice(&ck.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse from bytes, verifying version, lengths and the header checksum.
    pub fn decode(buf: &[u8]) -> WireResult<Self> {
        need(buf, Self::HEADER_LEN, "ipv4")?;
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(WireError::BadField {
                what: "ipv4-version",
                value: u64::from(version),
            });
        }
        let ihl = usize::from(buf[0] & 0x0f) * 4;
        if ihl < Self::HEADER_LEN {
            return Err(WireError::BadLength {
                what: "ipv4-ihl",
                claimed: ihl,
                actual: Self::HEADER_LEN,
            });
        }
        need(buf, ihl, "ipv4-options")?;
        let total_len = usize::from(be16(buf, 2, "ipv4")?);
        if total_len < ihl || total_len > buf.len() {
            return Err(WireError::BadLength {
                what: "ipv4-total-length",
                claimed: total_len,
                actual: buf.len(),
            });
        }
        let wire_ck = be16(buf, 10, "ipv4")?;
        let computed = {
            let mut hdr = buf[..ihl].to_vec();
            hdr[10] = 0;
            hdr[11] = 0;
            checksum(&hdr)
        };
        if wire_ck != computed {
            return Err(WireError::BadChecksum {
                what: "ipv4-header",
                found: wire_ck,
                expected: computed,
            });
        }
        let flags_frag = be16(buf, 6, "ipv4")?;
        Ok(Ipv4Packet {
            dscp_ecn: buf[1],
            identification: be16(buf, 4, "ipv4")?,
            dont_fragment: flags_frag & 0x4000 != 0,
            ttl: buf[8],
            protocol: buf[9],
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            payload: buf[ihl..total_len].to_vec(),
        })
    }

    /// Copy with TTL decremented (router forwarding). Returns `None` when the
    /// TTL would hit zero, in which case the router must drop (and would send
    /// an ICMP time-exceeded in a full implementation).
    pub fn forwarded(&self) -> Option<Ipv4Packet> {
        if self.ttl <= 1 {
            return None;
        }
        let mut p = self.clone();
        p.ttl -= 1;
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Packet {
        Ipv4Packet::new(
            "192.168.12.50".parse().unwrap(),
            "23.153.8.71".parse().unwrap(),
            proto::UDP,
            vec![0xde, 0xad, 0xbe, 0xef],
        )
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        assert_eq!(Ipv4Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn checksum_is_verified() {
        let mut bytes = sample().encode();
        bytes[8] = bytes[8].wrapping_add(1); // corrupt TTL without fixing checksum
        assert!(matches!(
            Ipv4Packet::decode(&bytes),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = sample().encode();
        bytes[0] = 0x65;
        assert!(matches!(
            Ipv4Packet::decode(&bytes),
            Err(WireError::BadField { .. })
        ));
    }

    #[test]
    fn total_length_bounds_payload() {
        // Trailing Ethernet padding must be ignored.
        let p = sample();
        let mut bytes = p.encode();
        bytes.extend_from_slice(&[0u8; 10]); // pad
        let q = Ipv4Packet::decode(&bytes).unwrap();
        assert_eq!(q.payload, p.payload);
    }

    #[test]
    fn ttl_forwarding() {
        let mut p = sample();
        p.ttl = 2;
        let f = p.forwarded().unwrap();
        assert_eq!(f.ttl, 1);
        assert!(f.forwarded().is_none());
    }
}
