//! IPv6 (RFC 8200) header encode/decode.

use crate::{be16, need, WireError, WireResult};
use std::net::Ipv6Addr;

/// A decoded IPv6 packet. Extension headers other than the payload protocol
/// are not emitted by the testbed; a packet carrying one is surfaced with its
/// `next_header` so callers can decide to drop it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv6Packet {
    /// Traffic class byte.
    pub traffic_class: u8,
    /// 20-bit flow label.
    pub flow_label: u32,
    /// Next header / payload protocol (see [`crate::ipv4::proto`]).
    pub next_header: u8,
    /// Hop limit.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
    /// Transport payload.
    pub payload: Vec<u8>,
}

impl Ipv6Packet {
    /// Fixed header length.
    pub const HEADER_LEN: usize = 40;

    /// Build a packet with common defaults (hop limit 64).
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, payload: Vec<u8>) -> Self {
        Ipv6Packet {
            traffic_class: 0,
            flow_label: 0,
            next_header,
            hop_limit: 64,
            src,
            dst,
            payload,
        }
    }

    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::HEADER_LEN + self.payload.len());
        let vtcfl: u32 =
            (6u32 << 28) | (u32::from(self.traffic_class) << 20) | (self.flow_label & 0xfffff);
        out.extend_from_slice(&vtcfl.to_be_bytes());
        out.extend_from_slice(&(self.payload.len() as u16).to_be_bytes());
        out.push(self.next_header);
        out.push(self.hop_limit);
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse from bytes.
    pub fn decode(buf: &[u8]) -> WireResult<Self> {
        need(buf, Self::HEADER_LEN, "ipv6")?;
        let version = buf[0] >> 4;
        if version != 6 {
            return Err(WireError::BadField {
                what: "ipv6-version",
                value: u64::from(version),
            });
        }
        let payload_len = usize::from(be16(buf, 4, "ipv6")?);
        if Self::HEADER_LEN + payload_len > buf.len() {
            return Err(WireError::BadLength {
                what: "ipv6-payload-length",
                claimed: payload_len,
                actual: buf.len() - Self::HEADER_LEN,
            });
        }
        let mut src = [0u8; 16];
        src.copy_from_slice(&buf[8..24]);
        let mut dst = [0u8; 16];
        dst.copy_from_slice(&buf[24..40]);
        Ok(Ipv6Packet {
            traffic_class: ((buf[0] & 0x0f) << 4) | (buf[1] >> 4),
            flow_label: (u32::from(buf[1] & 0x0f) << 16)
                | (u32::from(buf[2]) << 8)
                | u32::from(buf[3]),
            next_header: buf[6],
            hop_limit: buf[7],
            src: Ipv6Addr::from(src),
            dst: Ipv6Addr::from(dst),
            payload: buf[Self::HEADER_LEN..Self::HEADER_LEN + payload_len].to_vec(),
        })
    }

    /// Copy with hop limit decremented; `None` when it would hit zero.
    pub fn forwarded(&self) -> Option<Ipv6Packet> {
        if self.hop_limit <= 1 {
            return None;
        }
        let mut p = self.clone();
        p.hop_limit -= 1;
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::proto;

    fn sample() -> Ipv6Packet {
        let mut p = Ipv6Packet::new(
            "fd00:976a::9".parse().unwrap(),
            "64:ff9b::be5c:9e04".parse().unwrap(),
            proto::UDP,
            vec![1, 2, 3],
        );
        p.traffic_class = 0xb8;
        p.flow_label = 0xabcde;
        p
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        assert_eq!(Ipv6Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = sample().encode();
        bytes[0] = 0x45;
        assert!(matches!(
            Ipv6Packet::decode(&bytes),
            Err(WireError::BadField { .. })
        ));
    }

    #[test]
    fn payload_length_bounds_payload() {
        let p = sample();
        let mut bytes = p.encode();
        bytes.extend_from_slice(&[0u8; 6]); // link padding
        assert_eq!(Ipv6Packet::decode(&bytes).unwrap().payload, p.payload);
    }

    #[test]
    fn overlong_claim_rejected() {
        let p = sample();
        let mut bytes = p.encode();
        bytes[4] = 0xff; // claim a huge payload
        assert!(matches!(
            Ipv6Packet::decode(&bytes),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn hop_limit_forwarding() {
        let mut p = sample();
        p.hop_limit = 1;
        assert!(p.forwarded().is_none());
    }
}
