//! # v6wire — wire formats for the sc24v6 testbed simulator
//!
//! Hand-rolled, allocation-conscious encoders/decoders for every protocol the
//! paper's testbed carries on the wire:
//!
//! * Ethernet II framing and MAC addressing ([`mac`], [`ethernet`])
//! * ARP ([`arp`])
//! * IPv4 with header checksum ([`ipv4`]), IPv6 ([`ipv6`])
//! * UDP ([`udp`]) and TCP segments ([`tcp`])
//! * ICMPv4 ([`icmpv4`]) and ICMPv6 including the full NDP message set with
//!   PIO / RDNSS / DNSSL / MTU options ([`icmpv6`], [`ndp`])
//! * The internet checksum and v4/v6 pseudo-headers ([`checksum`]), with a
//!   runtime-dispatched scalar/SWAR kernel pair
//! * Borrowed zero-copy frame views ([`view`]), differentially tested
//!   against the owned decoders by `tests/conformance.rs`
//!
//! Every codec is a pure function over byte slices: `encode` appends to a
//! `Vec<u8>`, `decode` borrows from a `&[u8]` and never allocates unless the
//! parsed representation inherently owns data (e.g. a payload copy). The
//! [`view`] layer drops even that copy: it parses to borrowed slices and
//! converts to the owned structs only on demand.
//!
//! The higher layers (DNS, DHCP) own their own codecs in `v6dns` / `v6dhcp`
//! and ride inside [`udp::UdpDatagram`] payloads.

#![warn(missing_docs)]

pub mod arp;
pub mod checksum;
pub mod clamp;
pub mod ethernet;
pub mod fasthash;
pub mod icmpv4;
pub mod icmpv6;
pub mod ipv4;
pub mod ipv6;
pub mod mac;
pub mod metrics;
pub mod ndp;
pub mod packet;
pub mod tcp;
pub mod udp;
pub mod view;

pub use arp::{ArpOp, ArpPacket};
pub use ethernet::{EtherType, EthernetFrame};
pub use fasthash::{FastMap, FastSet};
pub use icmpv4::Icmpv4Message;
pub use icmpv6::Icmpv6Message;
pub use ipv4::Ipv4Packet;
pub use ipv6::Ipv6Packet;
pub use mac::MacAddr;
pub use metrics::Metrics;
pub use ndp::{NdpOption, RouterAdvertisement, RouterPreference};
pub use packet::{ParsedFrame, L3, L4};
pub use tcp::{TcpFlags, TcpSegment};
pub use udp::UdpDatagram;
pub use view::{FrameView, L3View, L4View};

/// Errors produced by any `v6wire` decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the fixed header or declared length was satisfied.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// A version / type / opcode field held a value the decoder cannot accept.
    BadField {
        /// What was being decoded.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A checksum failed verification.
    BadChecksum {
        /// Which protocol's checksum failed.
        what: &'static str,
        /// The checksum found on the wire.
        found: u16,
        /// The checksum we computed.
        expected: u16,
    },
    /// A length field is inconsistent with the surrounding data.
    BadLength {
        /// What was being decoded.
        what: &'static str,
        /// The length claimed on the wire.
        claimed: usize,
        /// The length actually available/allowed.
        actual: usize,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated { what, need, have } => {
                write!(f, "{what}: truncated (need {need} bytes, have {have})")
            }
            WireError::BadField { what, value } => {
                write!(f, "{what}: unacceptable field value {value:#x}")
            }
            WireError::BadChecksum {
                what,
                found,
                expected,
            } => write!(
                f,
                "{what}: bad checksum (wire {found:#06x}, computed {expected:#06x})"
            ),
            WireError::BadLength {
                what,
                claimed,
                actual,
            } => write!(f, "{what}: bad length (claimed {claimed}, actual {actual})"),
        }
    }
}

impl std::error::Error for WireError {}

/// Shorthand result type used across the crate.
pub type WireResult<T> = Result<T, WireError>;

/// Read a big-endian `u16` at `off`, or report truncation of `what`.
#[inline]
pub(crate) fn be16(buf: &[u8], off: usize, what: &'static str) -> WireResult<u16> {
    if buf.len() < off + 2 {
        return Err(WireError::Truncated {
            what,
            need: off + 2,
            have: buf.len(),
        });
    }
    Ok(u16::from_be_bytes([buf[off], buf[off + 1]]))
}

/// Read a big-endian `u32` at `off`, or report truncation of `what`.
#[inline]
pub(crate) fn be32(buf: &[u8], off: usize, what: &'static str) -> WireResult<u32> {
    if buf.len() < off + 4 {
        return Err(WireError::Truncated {
            what,
            need: off + 4,
            have: buf.len(),
        });
    }
    Ok(u32::from_be_bytes([
        buf[off],
        buf[off + 1],
        buf[off + 2],
        buf[off + 3],
    ]))
}

/// Ensure `buf` holds at least `need` bytes when decoding `what`.
#[inline]
pub(crate) fn need(buf: &[u8], need: usize, what: &'static str) -> WireResult<()> {
    if buf.len() < need {
        Err(WireError::Truncated {
            what,
            need,
            have: buf.len(),
        })
    } else {
        Ok(())
    }
}
