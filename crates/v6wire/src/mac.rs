//! MAC (EUI-48) addressing, including the multicast mappings used by IPv4 and
//! IPv6 and the EUI-64 expansion used by SLAAC interface identifiers.

use crate::{WireError, WireResult};
use std::net::Ipv6Addr;

/// A 48-bit IEEE 802 MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, used as "unknown" in ARP/DHCP exchanges.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Construct from raw bytes.
    pub const fn new(b: [u8; 6]) -> Self {
        MacAddr(b)
    }

    /// Decode from the first six bytes of `buf`.
    pub fn decode(buf: &[u8]) -> WireResult<Self> {
        if buf.len() < 6 {
            return Err(WireError::Truncated {
                what: "mac",
                need: 6,
                have: buf.len(),
            });
        }
        Ok(MacAddr([buf[0], buf[1], buf[2], buf[3], buf[4], buf[5]]))
    }

    /// True for group (multicast/broadcast) addresses: I/G bit set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the locally-administered (U/L) bit is set.
    pub fn is_locally_administered(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// The Ethernet multicast address for an IPv6 multicast destination
    /// (RFC 2464 §7): `33:33` followed by the low 32 bits of the group.
    pub fn for_ipv6_multicast(group: Ipv6Addr) -> MacAddr {
        let o = group.octets();
        MacAddr([0x33, 0x33, o[12], o[13], o[14], o[15]])
    }

    /// The Ethernet multicast address for an IPv4 multicast destination
    /// (RFC 1112 §6.4): `01:00:5e` + low 23 bits.
    pub fn for_ipv4_multicast(group: std::net::Ipv4Addr) -> MacAddr {
        let o = group.octets();
        MacAddr([0x01, 0x00, 0x5e, o[1] & 0x7f, o[2], o[3]])
    }

    /// Expand to a modified EUI-64 interface identifier (RFC 4291 App. A):
    /// insert `ff:fe` in the middle and flip the U/L bit.
    pub fn to_modified_eui64(&self) -> [u8; 8] {
        let m = self.0;
        [m[0] ^ 0x02, m[1], m[2], 0xff, 0xfe, m[3], m[4], m[5]]
    }
}

impl core::fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Debug::fmt(self, f)
    }
}

impl core::str::FromStr for MacAddr {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = [0u8; 6];
        let mut n = 0;
        for part in s.split(':') {
            if n == 6 {
                return Err(WireError::BadField {
                    what: "mac-str",
                    value: 7,
                });
            }
            out[n] = u8::from_str_radix(part, 16).map_err(|_| WireError::BadField {
                what: "mac-str",
                value: n as u64,
            })?;
            n += 1;
        }
        if n != 6 {
            return Err(WireError::BadField {
                what: "mac-str",
                value: n as u64,
            });
        }
        Ok(MacAddr(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn broadcast_is_multicast() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr::new([0x00, 0x11, 0x22, 0x33, 0x44, 0x55]).is_multicast());
    }

    #[test]
    fn ipv6_multicast_mapping() {
        let all_nodes: Ipv6Addr = "ff02::1".parse().unwrap();
        assert_eq!(
            MacAddr::for_ipv6_multicast(all_nodes),
            MacAddr::new([0x33, 0x33, 0, 0, 0, 1])
        );
        let solicited: Ipv6Addr = "ff02::1:ff28:9c5a".parse().unwrap();
        assert_eq!(
            MacAddr::for_ipv6_multicast(solicited),
            MacAddr::new([0x33, 0x33, 0xff, 0x28, 0x9c, 0x5a])
        );
    }

    #[test]
    fn ipv4_multicast_mapping_masks_high_bit() {
        // 224.128.1.2 and 224.0.1.2 map to the same MAC: 23-bit overlap.
        let a = MacAddr::for_ipv4_multicast(Ipv4Addr::new(224, 128, 1, 2));
        let b = MacAddr::for_ipv4_multicast(Ipv4Addr::new(224, 0, 1, 2));
        assert_eq!(a, b);
        assert_eq!(a, MacAddr::new([0x01, 0x00, 0x5e, 0x00, 0x01, 0x02]));
    }

    #[test]
    fn eui64_flips_ul_and_inserts_fffe() {
        // RFC 4291 example: 00:00:5E:00:53:00 -> 0200:5EFF:FE00:5300
        let mac = MacAddr::new([0x00, 0x00, 0x5e, 0x00, 0x53, 0x00]);
        assert_eq!(
            mac.to_modified_eui64(),
            [0x02, 0x00, 0x5e, 0xff, 0xfe, 0x00, 0x53, 0x00]
        );
    }

    #[test]
    fn parse_roundtrip() {
        let m: MacAddr = "de:ad:be:ef:00:01".parse().unwrap();
        assert_eq!(m.to_string(), "de:ad:be:ef:00:01");
        assert!("de:ad:be:ef:00".parse::<MacAddr>().is_err());
        assert!("zz:ad:be:ef:00:01".parse::<MacAddr>().is_err());
    }

    #[test]
    fn decode_truncated() {
        assert!(MacAddr::decode(&[1, 2, 3]).is_err());
    }
}
