//! Named counters shared by every instrumented component.
//!
//! The fleet runner aggregates per-node statistics from very different
//! devices — NAT64 translators, DHCP-snooping switches, caching DNS
//! resolvers — so the common currency is deliberately minimal: a sorted
//! map from counter name to `u64`. Determinism matters more than speed
//! here (snapshots are compared byte-for-byte across fleet runs), hence
//! the `BTreeMap`: iteration order, `Eq`, and the rendered form are all
//! independent of insertion order.
//!
//! Components expose a `metrics()` (or `device_metrics()`) method
//! returning one of these; composite devices fold child snapshots in
//! under a dotted prefix via [`Metrics::merge_namespaced`], e.g. the 5G
//! gateway reports its translator as `nat64.outbound`.

use std::collections::BTreeMap;
use std::fmt;

/// An ordered bag of named `u64` counters.
///
/// Missing counters read as zero, so callers never need to pre-register
/// names. Two snapshots are equal iff they hold the same non-zero
/// counters with the same values (zero-valued counters are never
/// stored).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
}

impl Metrics {
    /// An empty snapshot.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Add `delta` to counter `name` (creating it if new).
    ///
    /// Adding zero is a no-op and does not materialise the counter, so
    /// `m.add("drops", self.drops)` is safe to call unconditionally.
    pub fn add(&mut self, name: &str, delta: u64) {
        if delta > 0 {
            *self.counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Current value of counter `name` (zero if absent).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// True when no counter has ever been incremented.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Number of distinct (non-zero) counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Iterate counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Fold `child` in under `prefix`, so its counter `x` appears here
    /// as `prefix.x`. Existing counters with the same name accumulate.
    pub fn merge_namespaced(&mut self, prefix: &str, child: &Metrics) {
        for (name, value) in child.iter() {
            self.add(&format!("{prefix}.{name}"), value);
        }
    }

    /// Fold `other` in under the same names, accumulating counters that
    /// exist on both sides. This is how run manifests sum one node's
    /// device counters across every scenario of a fleet.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, value) in other.iter() {
            self.add(name, value);
        }
    }

    /// Sum of all counters matching `prefix.` plus the bare `prefix`
    /// counter itself — handy for invariant checks across namespaces.
    pub fn sum_under(&self, prefix: &str) -> u64 {
        let dotted = format!("{prefix}.");
        self.counters
            .iter()
            .filter(|(k, _)| *k == prefix || k.starts_with(&dotted))
            .map(|(_, &v)| v)
            .sum()
    }
}

/// Canonical counter names for injected faults (`v6fault` via the
/// `v6sim` link layer). Defined here so every layer — engine, fleet
/// reports, examples — agrees on the spelling.
pub mod fault_names {
    /// Frames dropped by random loss.
    pub const DROPPED: &str = "fault.dropped";
    /// Frames dropped inside a scheduled outage window.
    pub const OUTAGE_DROPPED: &str = "fault.outage_dropped";
    /// Frames delivered late (fixed latency, jitter, or reordering).
    pub const DELAYED: &str = "fault.delayed";
    /// Extra copies delivered beyond the original frame.
    pub const DUPLICATED: &str = "fault.duplicated";
    /// Frames delivered with a flipped payload byte.
    pub const CORRUPTED: &str = "fault.corrupted";
    /// Frames delivered cut to half length.
    pub const TRUNCATED: &str = "fault.truncated";
    /// Whole seconds of scheduled outage elapsed so far.
    pub const OUTAGE_SECS: &str = "fault.outage_secs";
}

/// Canonical counter names for the `v6sim` engine's own bookkeeping —
/// the frame-buffer pool and the trace/capture caps. Defined here, next
/// to [`fault_names`], so every layer agrees on the spelling.
pub mod engine_names {
    /// Fresh frame buffers allocated because the pool was empty.
    pub const POOL_ALLOCATED: &str = "pool.allocated";
    /// Frame buffers served from the recycle pool.
    pub const POOL_REUSED: &str = "pool.reused";
    /// Trace hops dropped because the trace cap was reached.
    pub const TRACE_SUPPRESSED: &str = "trace.suppressed";
    /// Frames not pcap-captured because the capture cap was reached.
    pub const CAPTURE_SUPPRESSED: &str = "capture.suppressed";
}

impl fmt::Display for Metrics {
    /// One `name=value` pair per line, in name order — the stable form
    /// used by golden tests and fleet-report comparison.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.iter() {
            writeln!(f, "{name}={value}")?;
        }
        Ok(())
    }
}

impl<'a> FromIterator<(&'a str, u64)> for Metrics {
    fn from_iter<T: IntoIterator<Item = (&'a str, u64)>>(iter: T) -> Metrics {
        let mut m = Metrics::new();
        for (name, value) in iter {
            m.add(name, value);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_adds_do_not_materialise_counters() {
        let mut m = Metrics::new();
        m.add("drops", 0);
        assert!(m.is_empty());
        assert_eq!(m.get("drops"), 0);
        m.add("drops", 2);
        m.add("drops", 3);
        assert_eq!(m.get("drops"), 5);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a: Metrics = [("tx", 4u64), ("rx", 7)].into_iter().collect();
        let b: Metrics = [("rx", 7u64), ("tx", 4)].into_iter().collect();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "rx=7\ntx=4\n");
    }

    #[test]
    fn namespacing_and_sums() {
        let child: Metrics = [("outbound", 3u64), ("dropped", 1)].into_iter().collect();
        let mut parent = Metrics::new();
        parent.add("no_route_drops", 2);
        parent.merge_namespaced("nat64", &child);
        assert_eq!(parent.get("nat64.outbound"), 3);
        assert_eq!(parent.sum_under("nat64"), 4);
        assert_eq!(parent.sum_under("no_route_drops"), 2);
    }
}
