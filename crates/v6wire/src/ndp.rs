//! Neighbor Discovery (RFC 4861) message bodies and options, including the
//! RFC 8106 RDNSS/DNSSL options and the RFC 4191 router-preference bits that
//! the paper's managed-switch workaround depends on ("a managed switch was
//! deployed capable of sending RAs in the fd00:976a::/64 prefix with **low
//! priority**").
//!
//! These are bodies only; [`crate::icmpv6::Icmpv6Message`] adds the ICMPv6
//! type/code/checksum envelope.

use crate::mac::MacAddr;
use crate::{be16, be32, need, WireError, WireResult};
use std::net::Ipv6Addr;

/// Default router preference (RFC 4191 §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RouterPreference {
    /// 11 binary — use only when nothing better exists.
    Low,
    /// 00 binary — the default.
    Medium,
    /// 01 binary — prefer this router.
    High,
}

impl RouterPreference {
    fn to_bits(self) -> u8 {
        match self {
            RouterPreference::High => 0b01,
            RouterPreference::Medium => 0b00,
            RouterPreference::Low => 0b11,
        }
    }

    pub(crate) fn from_bits(bits: u8) -> Self {
        match bits & 0b11 {
            0b01 => RouterPreference::High,
            0b11 => RouterPreference::Low,
            // 10 is reserved and must be treated as Medium (RFC 4191 §2.2).
            _ => RouterPreference::Medium,
        }
    }
}

/// An NDP option (RFC 4861 §4.6, RFC 8106).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NdpOption {
    /// Type 1: link-layer address of the sender.
    SourceLinkLayer(MacAddr),
    /// Type 2: link-layer address of the target.
    TargetLinkLayer(MacAddr),
    /// Type 3: Prefix Information (drives SLAAC).
    PrefixInformation {
        /// Prefix length in bits.
        prefix_len: u8,
        /// L flag: prefix is on-link.
        on_link: bool,
        /// A flag: prefix may be used for stateless autoconfiguration.
        autonomous: bool,
        /// Valid lifetime in seconds.
        valid_lifetime: u32,
        /// Preferred lifetime in seconds.
        preferred_lifetime: u32,
        /// The prefix.
        prefix: Ipv6Addr,
    },
    /// Type 5: link MTU.
    Mtu(u32),
    /// Type 25 (RFC 8106): Recursive DNS Server addresses.
    Rdnss {
        /// Lifetime in seconds.
        lifetime: u32,
        /// Resolver addresses.
        servers: Vec<Ipv6Addr>,
    },
    /// Type 31 (RFC 8106): DNS Search List.
    Dnssl {
        /// Lifetime in seconds.
        lifetime: u32,
        /// Search domains (presentation form, e.g. `rfc8925.com`).
        domains: Vec<String>,
    },
    /// Type 38 (RFC 8781): PREF64 — the NAT64 prefix, so RFC 8925 clients
    /// can configure their CLAT without the DNS64 heuristic. (The paper's
    /// testbed hardwired the well-known prefix; this is the standards-track
    /// successor.)
    Pref64 {
        /// Lifetime in seconds (encoded scaled by 8, so stored as a
        /// multiple of 8 ≤ 65528).
        lifetime: u16,
        /// The NAT64 prefix (high 96 bits significant).
        prefix: Ipv6Addr,
        /// Prefix length: one of 96/64/56/48/40/32.
        prefix_len: u8,
    },
    /// Any other option, carried opaquely (type, raw data after len byte).
    Unknown(u8, Vec<u8>),
}

/// Encode a domain name into DNS label wire form (no compression).
fn encode_labels(out: &mut Vec<u8>, name: &str) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        let bytes = label.as_bytes();
        out.push(bytes.len().min(63) as u8);
        out.extend_from_slice(&bytes[..bytes.len().min(63)]);
    }
    out.push(0);
}

/// Decode one DNS-label-form name from `buf` starting at `pos`; returns the
/// name and the position after its terminating zero.
fn decode_labels(buf: &[u8], mut pos: usize) -> WireResult<(String, usize)> {
    let mut name = String::new();
    loop {
        need(buf, pos + 1, "ndp-dnssl")?;
        let len = usize::from(buf[pos]);
        pos += 1;
        if len == 0 {
            break;
        }
        need(buf, pos + len, "ndp-dnssl")?;
        if !name.is_empty() {
            name.push('.');
        }
        name.push_str(&String::from_utf8_lossy(&buf[pos..pos + len]));
        pos += len;
    }
    Ok((name, pos))
}

impl NdpOption {
    /// Serialize (type, length-in-8-octet-units, body, padding).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        match self {
            NdpOption::SourceLinkLayer(mac) => {
                out.extend_from_slice(&[1, 1]);
                out.extend_from_slice(&mac.0);
            }
            NdpOption::TargetLinkLayer(mac) => {
                out.extend_from_slice(&[2, 1]);
                out.extend_from_slice(&mac.0);
            }
            NdpOption::PrefixInformation {
                prefix_len,
                on_link,
                autonomous,
                valid_lifetime,
                preferred_lifetime,
                prefix,
            } => {
                out.extend_from_slice(&[3, 4, *prefix_len]);
                let mut flags = 0u8;
                if *on_link {
                    flags |= 0x80;
                }
                if *autonomous {
                    flags |= 0x40;
                }
                out.push(flags);
                out.extend_from_slice(&valid_lifetime.to_be_bytes());
                out.extend_from_slice(&preferred_lifetime.to_be_bytes());
                out.extend_from_slice(&[0; 4]);
                out.extend_from_slice(&prefix.octets());
            }
            NdpOption::Mtu(mtu) => {
                out.extend_from_slice(&[5, 1, 0, 0]);
                out.extend_from_slice(&mtu.to_be_bytes());
            }
            NdpOption::Rdnss { lifetime, servers } => {
                let len = 1 + 2 * servers.len();
                out.extend_from_slice(&[25, len as u8, 0, 0]);
                out.extend_from_slice(&lifetime.to_be_bytes());
                for s in servers {
                    out.extend_from_slice(&s.octets());
                }
            }
            NdpOption::Dnssl { lifetime, domains } => {
                out.extend_from_slice(&[31, 0, 0, 0]); // len patched below
                out.extend_from_slice(&lifetime.to_be_bytes());
                for d in domains {
                    encode_labels(out, d);
                }
                // Pad to an 8-octet multiple and patch the length.
                while !(out.len() - start).is_multiple_of(8) {
                    out.push(0);
                }
                let units = (out.len() - start) / 8;
                out[start + 1] = units as u8;
            }
            NdpOption::Pref64 {
                lifetime,
                prefix,
                prefix_len,
            } => {
                let plc: u16 = match prefix_len {
                    96 => 0,
                    64 => 1,
                    56 => 2,
                    48 => 3,
                    40 => 4,
                    _ => 5, // 32
                };
                out.extend_from_slice(&[38, 2]);
                let scaled = ((*lifetime / 8) << 3) | plc;
                out.extend_from_slice(&scaled.to_be_bytes());
                out.extend_from_slice(&prefix.octets()[..12]);
            }
            NdpOption::Unknown(ty, data) => {
                let total = 2 + data.len();
                let units = total.div_ceil(8);
                out.push(*ty);
                out.push(units as u8);
                out.extend_from_slice(data);
                while !(out.len() - start).is_multiple_of(8) {
                    out.push(0);
                }
            }
        }
        debug_assert_eq!((out.len() - start) % 8, 0, "NDP option not 8-aligned");
    }

    /// Parse all options from `buf`.
    pub fn decode_all(mut buf: &[u8]) -> WireResult<Vec<NdpOption>> {
        let mut opts = Vec::new();
        while !buf.is_empty() {
            need(buf, 2, "ndp-option")?;
            let ty = buf[0];
            let len = usize::from(buf[1]) * 8;
            if len == 0 {
                return Err(WireError::BadLength {
                    what: "ndp-option-zero-len",
                    claimed: 0,
                    actual: buf.len(),
                });
            }
            need(buf, len, "ndp-option")?;
            let body = &buf[..len];
            let opt = match ty {
                1 => NdpOption::SourceLinkLayer(MacAddr::decode(&body[2..8])?),
                2 => NdpOption::TargetLinkLayer(MacAddr::decode(&body[2..8])?),
                3 => {
                    need(body, 32, "ndp-pio")?;
                    let mut prefix = [0u8; 16];
                    prefix.copy_from_slice(&body[16..32]);
                    NdpOption::PrefixInformation {
                        prefix_len: body[2],
                        on_link: body[3] & 0x80 != 0,
                        autonomous: body[3] & 0x40 != 0,
                        valid_lifetime: be32(body, 4, "ndp-pio")?,
                        preferred_lifetime: be32(body, 8, "ndp-pio")?,
                        prefix: Ipv6Addr::from(prefix),
                    }
                }
                5 => {
                    need(body, 8, "ndp-mtu")?;
                    NdpOption::Mtu(be32(body, 4, "ndp-mtu")?)
                }
                25 => {
                    need(body, 8, "ndp-rdnss")?;
                    let lifetime = be32(body, 4, "ndp-rdnss")?;
                    let mut servers = Vec::new();
                    let mut pos = 8;
                    while pos + 16 <= body.len() {
                        let mut a = [0u8; 16];
                        a.copy_from_slice(&body[pos..pos + 16]);
                        servers.push(Ipv6Addr::from(a));
                        pos += 16;
                    }
                    NdpOption::Rdnss { lifetime, servers }
                }
                31 => {
                    need(body, 8, "ndp-dnssl")?;
                    let lifetime = be32(body, 4, "ndp-dnssl")?;
                    let mut domains = Vec::new();
                    let mut pos = 8;
                    while pos < body.len() && body[pos] != 0 {
                        let (name, next) = decode_labels(body, pos)?;
                        domains.push(name);
                        pos = next;
                    }
                    NdpOption::Dnssl { lifetime, domains }
                }
                38 => {
                    need(body, 16, "ndp-pref64")?;
                    let scaled = be16(body, 2, "ndp-pref64")?;
                    let prefix_len = match scaled & 0b111 {
                        0 => 96,
                        1 => 64,
                        2 => 56,
                        3 => 48,
                        4 => 40,
                        _ => 32,
                    };
                    let mut o = [0u8; 16];
                    o[..12].copy_from_slice(&body[4..16]);
                    NdpOption::Pref64 {
                        lifetime: (scaled >> 3) * 8,
                        prefix: Ipv6Addr::from(o),
                        prefix_len,
                    }
                }
                other => NdpOption::Unknown(other, body[2..].to_vec()),
            };
            opts.push(opt);
            buf = &buf[len..];
        }
        Ok(opts)
    }
}

/// Router Solicitation (RFC 4861 §4.1) body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RouterSolicitation {
    /// Options (usually a source link-layer address).
    pub options: Vec<NdpOption>,
}

/// Router Advertisement (RFC 4861 §4.2) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterAdvertisement {
    /// Suggested hop limit (0 = unspecified).
    pub cur_hop_limit: u8,
    /// M flag: addresses available via DHCPv6.
    pub managed: bool,
    /// O flag: other configuration via DHCPv6.
    pub other_config: bool,
    /// Default-router lifetime in seconds (0 = not a default router).
    pub router_lifetime: u16,
    /// RFC 4191 default router preference.
    pub preference: RouterPreference,
    /// Reachable time (ms, 0 = unspecified).
    pub reachable_time: u32,
    /// Retransmission timer (ms, 0 = unspecified).
    pub retrans_timer: u32,
    /// Options (PIO, RDNSS, DNSSL, MTU, SLL...).
    pub options: Vec<NdpOption>,
}

impl RouterAdvertisement {
    /// A plain default-router RA with medium preference and no options.
    pub fn new(router_lifetime: u16) -> Self {
        RouterAdvertisement {
            cur_hop_limit: 64,
            managed: false,
            other_config: false,
            router_lifetime,
            preference: RouterPreference::Medium,
            reachable_time: 0,
            retrans_timer: 0,
            options: Vec::new(),
        }
    }

    /// First RDNSS option's servers, if any — what a host's resolver
    /// configuration consumes.
    pub fn rdnss_servers(&self) -> Vec<Ipv6Addr> {
        self.options
            .iter()
            .find_map(|o| match o {
                NdpOption::Rdnss { servers, .. } => Some(servers.clone()),
                _ => None,
            })
            .unwrap_or_default()
    }

    /// All autonomous (SLAAC-eligible) prefixes advertised.
    pub fn slaac_prefixes(&self) -> Vec<(Ipv6Addr, u8)> {
        self.options
            .iter()
            .filter_map(|o| match o {
                NdpOption::PrefixInformation {
                    autonomous: true,
                    prefix,
                    prefix_len,
                    ..
                } => Some((*prefix, *prefix_len)),
                _ => None,
            })
            .collect()
    }

    pub(crate) fn encode_body(&self, out: &mut Vec<u8>) {
        out.push(self.cur_hop_limit);
        let mut flags = 0u8;
        if self.managed {
            flags |= 0x80;
        }
        if self.other_config {
            flags |= 0x40;
        }
        flags |= self.preference.to_bits() << 3;
        out.push(flags);
        out.extend_from_slice(&self.router_lifetime.to_be_bytes());
        out.extend_from_slice(&self.reachable_time.to_be_bytes());
        out.extend_from_slice(&self.retrans_timer.to_be_bytes());
        for opt in &self.options {
            opt.encode(out);
        }
    }

    pub(crate) fn decode_body(buf: &[u8]) -> WireResult<Self> {
        need(buf, 12, "ndp-ra")?;
        Ok(RouterAdvertisement {
            cur_hop_limit: buf[0],
            managed: buf[1] & 0x80 != 0,
            other_config: buf[1] & 0x40 != 0,
            preference: RouterPreference::from_bits(buf[1] >> 3),
            router_lifetime: be16(buf, 2, "ndp-ra")?,
            reachable_time: be32(buf, 4, "ndp-ra")?,
            retrans_timer: be32(buf, 8, "ndp-ra")?,
            options: NdpOption::decode_all(&buf[12..])?,
        })
    }
}

/// Neighbor Solicitation (RFC 4861 §4.3) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborSolicitation {
    /// Address whose link-layer address is sought.
    pub target: Ipv6Addr,
    /// Options (usually SLL).
    pub options: Vec<NdpOption>,
}

/// Neighbor Advertisement (RFC 4861 §4.4) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborAdvertisement {
    /// R flag: sender is a router.
    pub router: bool,
    /// S flag: response to a solicitation.
    pub solicited: bool,
    /// O flag: override existing cache entry.
    pub override_flag: bool,
    /// The target address being advertised.
    pub target: Ipv6Addr,
    /// Options (usually TLL).
    pub options: Vec<NdpOption>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testbed_ra() -> RouterAdvertisement {
        // The managed-switch RA from the paper: fd00:976a::/64, low priority,
        // RDNSS fd00:976a::9.
        let mut ra = RouterAdvertisement::new(1800);
        ra.preference = RouterPreference::Low;
        ra.options.push(NdpOption::PrefixInformation {
            prefix_len: 64,
            on_link: true,
            autonomous: true,
            valid_lifetime: 2592000,
            preferred_lifetime: 604800,
            prefix: "fd00:976a::".parse().unwrap(),
        });
        ra.options.push(NdpOption::Rdnss {
            lifetime: 3600,
            servers: vec!["fd00:976a::9".parse().unwrap()],
        });
        ra.options.push(NdpOption::Dnssl {
            lifetime: 3600,
            domains: vec!["rfc8925.com".into()],
        });
        ra.options.push(NdpOption::Mtu(1500));
        ra.options
            .push(NdpOption::SourceLinkLayer(MacAddr::new([2, 0, 0, 0, 0, 1])));
        ra
    }

    #[test]
    fn ra_body_roundtrip() {
        let ra = testbed_ra();
        let mut buf = Vec::new();
        ra.encode_body(&mut buf);
        let got = RouterAdvertisement::decode_body(&buf).unwrap();
        assert_eq!(got, ra);
    }

    #[test]
    fn preference_bits() {
        for p in [
            RouterPreference::Low,
            RouterPreference::Medium,
            RouterPreference::High,
        ] {
            assert_eq!(RouterPreference::from_bits(p.to_bits()), p);
        }
        // Reserved 10 maps to Medium.
        assert_eq!(RouterPreference::from_bits(0b10), RouterPreference::Medium);
    }

    #[test]
    fn accessors_extract_rdnss_and_slaac() {
        let ra = testbed_ra();
        assert_eq!(
            ra.rdnss_servers(),
            vec!["fd00:976a::9".parse::<Ipv6Addr>().unwrap()]
        );
        assert_eq!(
            ra.slaac_prefixes(),
            vec![("fd00:976a::".parse().unwrap(), 64)]
        );
    }

    #[test]
    fn dnssl_multiple_domains_roundtrip() {
        let opt = NdpOption::Dnssl {
            lifetime: 60,
            domains: vec!["anl.gov".into(), "rfc8925.com".into()],
        };
        let mut buf = Vec::new();
        opt.encode(&mut buf);
        assert_eq!(buf.len() % 8, 0);
        let got = NdpOption::decode_all(&buf).unwrap();
        assert_eq!(got, vec![opt]);
    }

    #[test]
    fn unknown_option_skipped_not_fatal() {
        let mut buf = Vec::new();
        NdpOption::Unknown(200, vec![1, 2, 3]).encode(&mut buf);
        NdpOption::Mtu(1280).encode(&mut buf);
        let got = NdpOption::decode_all(&buf).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1], NdpOption::Mtu(1280));
    }

    #[test]
    fn zero_length_option_rejected() {
        // RFC 4861 §4.6: length 0 MUST be discarded.
        let buf = [25u8, 0, 0, 0, 0, 0, 0, 0];
        assert!(NdpOption::decode_all(&buf).is_err());
    }

    #[test]
    fn pref64_roundtrip_all_plcs() {
        // RFC 8781: lifetime scaled by 8; PLC selects the prefix length.
        for len in [96u8, 64, 56, 48, 40, 32] {
            let opt = NdpOption::Pref64 {
                lifetime: 1800, // multiple of 8? 1800/8=225 → stored 1800
                prefix: "64:ff9b::".parse().unwrap(),
                prefix_len: len,
            };
            let mut buf = Vec::new();
            opt.encode(&mut buf);
            assert_eq!(buf.len(), 16, "fixed 16-byte option");
            let got = NdpOption::decode_all(&buf).unwrap();
            match &got[0] {
                NdpOption::Pref64 {
                    lifetime,
                    prefix,
                    prefix_len,
                } => {
                    assert_eq!(*lifetime, 1800 / 8 * 8);
                    assert_eq!(*prefix, "64:ff9b::".parse::<Ipv6Addr>().unwrap());
                    assert_eq!(*prefix_len, len);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn rdnss_two_servers() {
        // The 5G gateway advertises two dead ULA resolvers (paper Fig. 3).
        let opt = NdpOption::Rdnss {
            lifetime: 1800,
            servers: vec![
                "fd00:976a::9".parse().unwrap(),
                "fd00:976a::10".parse().unwrap(),
            ],
        };
        let mut buf = Vec::new();
        opt.encode(&mut buf);
        assert_eq!(buf[1], 5); // 1 + 2*2 units of 8 octets
        assert_eq!(NdpOption::decode_all(&buf).unwrap(), vec![opt]);
    }
}
