//! Layered frame parsing and building conveniences.
//!
//! The simulator moves raw `Vec<u8>` Ethernet frames; devices use
//! [`ParsedFrame::parse`] to get a structured view down to L4 in one call and
//! the `build_*` helpers to emit complete frames.

use crate::arp::ArpPacket;
use crate::ethernet::{EtherType, EthernetFrame};
use crate::icmpv4::Icmpv4Message;
use crate::icmpv6::Icmpv6Message;
use crate::ipv4::{proto, Ipv4Packet};
use crate::ipv6::Ipv6Packet;
use crate::mac::MacAddr;
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;
use crate::view::{FrameView, Icmp4View, Icmp6View, L3View, L4View, TcpView};
use crate::{WireError, WireResult};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Network-layer content of a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum L3 {
    /// ARP packet.
    Arp(ArpPacket),
    /// IPv4 packet (payload retained for L4 parsing).
    V4(Ipv4Packet),
    /// IPv6 packet.
    V6(Ipv6Packet),
    /// Unrecognized ethertype, raw payload.
    Other(u16, Vec<u8>),
}

/// Transport-layer content of a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum L4 {
    /// UDP datagram.
    Udp(UdpDatagram),
    /// TCP segment.
    Tcp(TcpSegment),
    /// ICMPv4 message.
    Icmp4(Icmpv4Message),
    /// ICMPv6 message.
    Icmp6(Icmpv6Message),
    /// No transport content parsed (ARP, unknown protocol, ...).
    None,
}

/// A frame parsed through Ethernet → IP → transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFrame {
    /// The Ethernet envelope (payload retained verbatim).
    pub eth: EthernetFrame,
    /// Network layer.
    pub l3: L3,
    /// Transport layer.
    pub l4: L4,
}

impl ParsedFrame {
    /// Parse a raw frame through all layers, verifying every checksum on the
    /// way. Unknown ethertypes and IP protocols parse to `Other`/`None`
    /// rather than erroring; genuine corruption does error.
    pub fn parse(raw: &[u8]) -> WireResult<ParsedFrame> {
        let eth = EthernetFrame::decode(raw)?;
        let (l3, l4) = match eth.ethertype {
            EtherType::Arp => (L3::Arp(ArpPacket::decode(&eth.payload)?), L4::None),
            EtherType::Ipv4 => {
                let ip = Ipv4Packet::decode(&eth.payload)?;
                let l4 = match ip.protocol {
                    proto::UDP => L4::Udp(UdpDatagram::decode_v4(&ip.payload, ip.src, ip.dst)?),
                    proto::TCP => L4::Tcp(TcpSegment::decode_v4(&ip.payload, ip.src, ip.dst)?),
                    proto::ICMP => L4::Icmp4(Icmpv4Message::decode(&ip.payload)?),
                    _ => L4::None,
                };
                (L3::V4(ip), l4)
            }
            EtherType::Ipv6 => {
                let ip = Ipv6Packet::decode(&eth.payload)?;
                let l4 = match ip.next_header {
                    proto::UDP => L4::Udp(UdpDatagram::decode_v6(&ip.payload, ip.src, ip.dst)?),
                    proto::TCP => L4::Tcp(TcpSegment::decode_v6(&ip.payload, ip.src, ip.dst)?),
                    proto::ICMPV6 => L4::Icmp6(Icmpv6Message::decode(&ip.payload, ip.src, ip.dst)?),
                    _ => L4::None,
                };
                (L3::V6(ip), l4)
            }
            EtherType::Other(v) => (L3::Other(v, eth.payload.clone()), L4::None),
        };
        Ok(ParsedFrame { eth, l3, l4 })
    }

    /// The IPv6 source, if this is an IPv6 frame.
    pub fn v6_src(&self) -> Option<Ipv6Addr> {
        match &self.l3 {
            L3::V6(p) => Some(p.src),
            _ => None,
        }
    }

    /// The IPv4 source, if this is an IPv4 frame.
    pub fn v4_src(&self) -> Option<Ipv4Addr> {
        match &self.l3 {
            L3::V4(p) => Some(p.src),
            _ => None,
        }
    }
}

/// Build a complete Ethernet/IPv4/UDP frame.
pub fn build_udp_v4(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    dgram: &UdpDatagram,
) -> Vec<u8> {
    let ip = Ipv4Packet::new(src, dst, proto::UDP, dgram.encode_v4(src, dst));
    EthernetFrame::new(dst_mac, src_mac, EtherType::Ipv4, ip.encode()).encode()
}

/// Build a complete Ethernet/IPv6/UDP frame.
pub fn build_udp_v6(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src: Ipv6Addr,
    dst: Ipv6Addr,
    dgram: &UdpDatagram,
) -> Vec<u8> {
    let ip = Ipv6Packet::new(src, dst, proto::UDP, dgram.encode_v6(src, dst));
    EthernetFrame::new(dst_mac, src_mac, EtherType::Ipv6, ip.encode()).encode()
}

/// Build a complete Ethernet/IPv4/TCP frame.
pub fn build_tcp_v4(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    seg: &TcpSegment,
) -> Vec<u8> {
    let ip = Ipv4Packet::new(src, dst, proto::TCP, seg.encode_v4(src, dst));
    EthernetFrame::new(dst_mac, src_mac, EtherType::Ipv4, ip.encode()).encode()
}

/// Build a complete Ethernet/IPv6/TCP frame.
pub fn build_tcp_v6(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src: Ipv6Addr,
    dst: Ipv6Addr,
    seg: &TcpSegment,
) -> Vec<u8> {
    let ip = Ipv6Packet::new(src, dst, proto::TCP, seg.encode_v6(src, dst));
    EthernetFrame::new(dst_mac, src_mac, EtherType::Ipv6, ip.encode()).encode()
}

/// Build a complete Ethernet/IPv6/ICMPv6 frame (hop limit 255 for NDP, as
/// RFC 4861 §7.1 requires receivers to verify).
pub fn build_icmpv6(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src: Ipv6Addr,
    dst: Ipv6Addr,
    msg: &Icmpv6Message,
) -> Vec<u8> {
    let mut ip = Ipv6Packet::new(src, dst, proto::ICMPV6, msg.encode(src, dst));
    if matches!(
        msg,
        Icmpv6Message::RouterSolicitation(_)
            | Icmpv6Message::RouterAdvertisement(_)
            | Icmpv6Message::NeighborSolicitation(_)
            | Icmpv6Message::NeighborAdvertisement(_)
    ) {
        ip.hop_limit = 255;
    }
    EthernetFrame::new(dst_mac, src_mac, EtherType::Ipv6, ip.encode()).encode()
}

/// Build a complete Ethernet/IPv4/ICMPv4 frame.
pub fn build_icmpv4(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    msg: &Icmpv4Message,
) -> Vec<u8> {
    let ip = Ipv4Packet::new(src, dst, proto::ICMP, msg.encode());
    EthernetFrame::new(dst_mac, src_mac, EtherType::Ipv4, ip.encode()).encode()
}

/// Build an Ethernet/ARP frame (broadcast for requests, unicast for replies).
pub fn build_arp(src_mac: MacAddr, dst_mac: MacAddr, arp: &ArpPacket) -> Vec<u8> {
    EthernetFrame::new(dst_mac, src_mac, EtherType::Arp, arp.encode()).encode()
}

/// One-line human-readable summary of a frame for trace tooling:
/// protocol, addresses, ports/types.
///
/// Parses through the borrowed [`FrameView`] layer, so the only allocation
/// per call is the returned `String` — this is the engine's Full-trace hot
/// path. Text is byte-identical to the historic owned-parse implementation
/// (golden traces and the conformance suite both pin it).
pub fn summarize(raw: &[u8]) -> String {
    let parsed = match FrameView::parse(raw) {
        Ok(p) => p,
        Err(_) => return format!("corrupt: {}", classify(raw)),
    };
    match (&parsed.l3, &parsed.l4) {
        (L3View::Arp(a), _) => match a.op {
            crate::arp::ArpOp::Request => format!("ARP who-has {}", a.target_ip),
            crate::arp::ArpOp::Reply => format!("ARP {} is-at {}", a.sender_ip, a.sender_mac),
        },
        (L3View::V4(ip), L4View::Udp(u)) => format!(
            "IPv4 {}:{} > {}:{} UDP{}",
            ip.src,
            u.src_port,
            ip.dst,
            u.dst_port,
            udp_hint(u.src_port, u.dst_port)
        ),
        (L3View::V6(ip), L4View::Udp(u)) => format!(
            "IPv6 [{}]:{} > [{}]:{} UDP{}",
            ip.src,
            u.src_port,
            ip.dst,
            u.dst_port,
            udp_hint(u.src_port, u.dst_port)
        ),
        (L3View::V4(ip), L4View::Tcp(t)) => format!(
            "IPv4 {}:{} > {}:{} TCP {}",
            ip.src,
            t.src_port,
            ip.dst,
            t.dst_port,
            tcp_flags(t)
        ),
        (L3View::V6(ip), L4View::Tcp(t)) => format!(
            "IPv6 [{}]:{} > [{}]:{} TCP {}",
            ip.src,
            t.src_port,
            ip.dst,
            t.dst_port,
            tcp_flags(t)
        ),
        (L3View::V4(ip), L4View::Icmp4(m)) => {
            format!("IPv4 {} > {} {}", ip.src, ip.dst, icmp4_name(m))
        }
        (L3View::V6(ip), L4View::Icmp6(m)) => {
            format!("IPv6 [{}] > [{}] {}", ip.src, ip.dst, icmp6_name(m))
        }
        (L3View::V4(ip), L4View::None) => {
            format!("IPv4 {} > {} proto {}", ip.src, ip.dst, ip.protocol)
        }
        (L3View::V6(ip), L4View::None) => {
            format!("IPv6 [{}] > [{}] nh {}", ip.src, ip.dst, ip.next_header)
        }
        (L3View::Other(et, _), _) => format!("ethertype {et:#06x}"),
        _ => "frame".to_string(),
    }
}

fn udp_hint(src_port: u16, dst_port: u16) -> &'static str {
    match (src_port, dst_port) {
        (_, 53) | (53, _) => " (DNS)",
        (68, 67) | (67, 68) => " (DHCP)",
        _ => "",
    }
}

fn tcp_flags(t: &TcpView<'_>) -> String {
    let mut f = String::new();
    if t.flags.syn {
        f.push('S');
    }
    if t.flags.fin {
        f.push('F');
    }
    if t.flags.rst {
        f.push('R');
    }
    if t.flags.psh {
        f.push('P');
    }
    if t.flags.ack {
        f.push('.');
    }
    format!("[{f}] len={}", t.payload.len())
}

fn icmp4_name(m: &Icmp4View<'_>) -> &'static str {
    match m {
        Icmp4View::EchoRequest { .. } => "ICMP echo request",
        Icmp4View::EchoReply { .. } => "ICMP echo reply",
        Icmp4View::DestinationUnreachable { .. } => "ICMP unreachable",
        Icmp4View::TimeExceeded { .. } => "ICMP time exceeded",
    }
}

fn icmp6_name(m: &Icmp6View<'_>) -> &'static str {
    match m {
        Icmp6View::EchoRequest { .. } => "ICMPv6 echo request",
        Icmp6View::EchoReply { .. } => "ICMPv6 echo reply",
        Icmp6View::DestinationUnreachable { .. } => "ICMPv6 unreachable",
        Icmp6View::RouterSolicitation { .. } => "NDP router solicitation",
        Icmp6View::RouterAdvertisement(_) => "NDP router advertisement",
        Icmp6View::NeighborSolicitation { .. } => "NDP neighbor solicitation",
        Icmp6View::NeighborAdvertisement { .. } => "NDP neighbor advertisement",
    }
}

/// Corrupt-frame classification used by trace tooling: returns a short label
/// for why `parse` failed, or "ok". Allocation-free: classifies through the
/// borrowed view layer (whose errors are proven identical to the owned
/// decoders' by the conformance suite).
pub fn classify(raw: &[u8]) -> &'static str {
    match FrameView::parse(raw) {
        Ok(_) => "ok",
        Err(WireError::Truncated { what, .. }) => what,
        Err(WireError::BadField { what, .. }) => what,
        Err(WireError::BadChecksum { what, .. }) => what,
        Err(WireError::BadLength { what, .. }) => what,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpFlags;

    fn mac(n: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, n])
    }

    #[test]
    fn full_stack_udp_v6() {
        let d = UdpDatagram::new(5353, 53, b"hello".to_vec());
        let raw = build_udp_v6(
            mac(1),
            mac(2),
            "fd00:976a::50".parse().unwrap(),
            "fd00:976a::9".parse().unwrap(),
            &d,
        );
        let p = ParsedFrame::parse(&raw).unwrap();
        assert!(matches!(p.l3, L3::V6(_)));
        match p.l4 {
            L4::Udp(got) => assert_eq!(got, d),
            other => panic!("unexpected l4: {other:?}"),
        }
    }

    #[test]
    fn full_stack_tcp_v4() {
        let seg = TcpSegment::new(40000, 80, 1, 0, TcpFlags::SYN);
        let raw = build_tcp_v4(
            mac(1),
            mac(2),
            "192.168.12.50".parse().unwrap(),
            "23.153.8.71".parse().unwrap(),
            &seg,
        );
        let p = ParsedFrame::parse(&raw).unwrap();
        assert!(matches!(p.l4, L4::Tcp(_)));
        assert_eq!(p.v4_src(), Some("192.168.12.50".parse().unwrap()));
    }

    #[test]
    fn ndp_frames_get_hop_limit_255() {
        let msg = Icmpv6Message::RouterSolicitation(Default::default());
        let raw = build_icmpv6(
            mac(1),
            MacAddr::for_ipv6_multicast(crate::icmpv6::all_routers()),
            "fe80::1".parse().unwrap(),
            crate::icmpv6::all_routers(),
            &msg,
        );
        let p = ParsedFrame::parse(&raw).unwrap();
        match p.l3 {
            L3::V6(ip) => assert_eq!(ip.hop_limit, 255),
            other => panic!("unexpected l3: {other:?}"),
        }
    }

    #[test]
    fn echo_v6_keeps_default_hop_limit() {
        let msg = Icmpv6Message::EchoRequest {
            ident: 1,
            seq: 1,
            payload: vec![],
        };
        let raw = build_icmpv6(
            mac(1),
            mac(2),
            "fd00::1".parse().unwrap(),
            "fd00::2".parse().unwrap(),
            &msg,
        );
        match ParsedFrame::parse(&raw).unwrap().l3 {
            L3::V6(ip) => assert_eq!(ip.hop_limit, 64),
            other => panic!("unexpected l3: {other:?}"),
        }
    }

    #[test]
    fn classify_reports_layer() {
        assert_eq!(classify(&[0u8; 4]), "ethernet");
        let d = UdpDatagram::new(1, 2, vec![]);
        let mut raw = build_udp_v4(
            mac(1),
            mac(2),
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            &d,
        );
        let n = raw.len();
        raw[n - 1] ^= 0xff; // corrupt UDP checksum region
        assert_eq!(classify(&raw), "udp-v4");
    }

    #[test]
    fn unknown_ethertype_is_other() {
        let f = EthernetFrame::new(mac(1), mac(2), EtherType::Other(0x88cc), vec![9, 9]);
        let p = ParsedFrame::parse(&f.encode()).unwrap();
        assert!(matches!(p.l3, L3::Other(0x88cc, _)));
        assert!(matches!(p.l4, L4::None));
    }
}
