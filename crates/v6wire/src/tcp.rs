//! TCP (RFC 9293) segment encode/decode with pseudo-header checksums.
//!
//! Only the MSS option is modelled; the simulator's TCP endpoints (in
//! `v6sim::tcp`) implement the connection state machine on top of this codec.

use crate::checksum::{pseudo_v4, pseudo_v6};
use crate::{be16, be32, need, WireError, WireResult};
use std::net::{Ipv4Addr, Ipv6Addr};

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// FIN.
    pub fin: bool,
    /// SYN.
    pub syn: bool,
    /// RST.
    pub rst: bool,
    /// PSH.
    pub psh: bool,
    /// ACK.
    pub ack: bool,
}

impl TcpFlags {
    /// SYN only.
    pub const SYN: TcpFlags = TcpFlags {
        fin: false,
        syn: true,
        rst: false,
        psh: false,
        ack: false,
    };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        fin: false,
        syn: true,
        rst: false,
        psh: false,
        ack: true,
    };
    /// ACK only.
    pub const ACK: TcpFlags = TcpFlags {
        fin: false,
        syn: false,
        rst: false,
        psh: false,
        ack: true,
    };
    /// RST only.
    pub const RST: TcpFlags = TcpFlags {
        fin: false,
        syn: false,
        rst: true,
        psh: false,
        ack: false,
    };
    /// FIN+ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        fin: true,
        syn: false,
        rst: false,
        psh: false,
        ack: true,
    };
    /// PSH+ACK (data).
    pub const PSH_ACK: TcpFlags = TcpFlags {
        fin: false,
        syn: false,
        rst: false,
        psh: true,
        ack: true,
    };

    fn to_byte(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
    }

    pub(crate) fn from_byte(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number (meaningful when `flags.ack`).
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Maximum segment size option (SYN segments only).
    pub mss: Option<u16>,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// Minimum header length.
    pub const HEADER_LEN: usize = 20;

    /// Build a segment with a 64 KiB window and no options.
    pub fn new(src_port: u16, dst_port: u16, seq: u32, ack: u32, flags: TcpFlags) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 0xffff,
            mss: None,
            payload: Vec::new(),
        }
    }

    fn encode_raw(&self) -> Vec<u8> {
        let opts_len = if self.mss.is_some() { 4 } else { 0 };
        let data_off = (Self::HEADER_LEN + opts_len) / 4;
        let mut out = Vec::with_capacity(Self::HEADER_LEN + opts_len + self.payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push((data_off as u8) << 4);
        out.push(self.flags.to_byte());
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&[0, 0]); // urgent pointer
        if let Some(mss) = self.mss {
            out.push(2); // kind: MSS
            out.push(4); // length
            out.extend_from_slice(&mss.to_be_bytes());
        }
        out.extend_from_slice(&self.payload);
        out
    }

    /// Serialize with an IPv4 pseudo-header checksum.
    pub fn encode_v4(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let mut out = self.encode_raw();
        let mut ck = pseudo_v4(src, dst, crate::ipv4::proto::TCP, out.len() as u16);
        ck.push(&out);
        let sum = ck.finish();
        out[16..18].copy_from_slice(&sum.to_be_bytes());
        out
    }

    /// Serialize with an IPv6 pseudo-header checksum.
    pub fn encode_v6(&self, src: Ipv6Addr, dst: Ipv6Addr) -> Vec<u8> {
        let mut out = self.encode_raw();
        let mut ck = pseudo_v6(src, dst, crate::ipv4::proto::TCP, out.len() as u32);
        ck.push(&out);
        let sum = ck.finish();
        out[16..18].copy_from_slice(&sum.to_be_bytes());
        out
    }

    fn decode_raw(buf: &[u8]) -> WireResult<Self> {
        need(buf, Self::HEADER_LEN, "tcp")?;
        let data_off = usize::from(buf[12] >> 4) * 4;
        if data_off < Self::HEADER_LEN || data_off > buf.len() {
            return Err(WireError::BadLength {
                what: "tcp-data-offset",
                claimed: data_off,
                actual: buf.len(),
            });
        }
        let mut mss = None;
        let mut opts = &buf[Self::HEADER_LEN..data_off];
        while let Some(&kind) = opts.first() {
            match kind {
                0 => break,             // end of options
                1 => opts = &opts[1..], // NOP
                2 => {
                    need(opts, 4, "tcp-mss")?;
                    mss = Some(u16::from_be_bytes([opts[2], opts[3]]));
                    opts = &opts[4..];
                }
                _ => {
                    // Unknown option: skip by its length byte.
                    need(opts, 2, "tcp-opt")?;
                    let l = usize::from(opts[1]).max(2);
                    need(opts, l, "tcp-opt")?;
                    opts = &opts[l..];
                }
            }
        }
        Ok(TcpSegment {
            src_port: be16(buf, 0, "tcp")?,
            dst_port: be16(buf, 2, "tcp")?,
            seq: be32(buf, 4, "tcp")?,
            ack: be32(buf, 8, "tcp")?,
            flags: TcpFlags::from_byte(buf[13]),
            window: be16(buf, 14, "tcp")?,
            mss,
            payload: buf[data_off..].to_vec(),
        })
    }

    /// Parse and verify against an IPv4 pseudo-header.
    pub fn decode_v4(buf: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> WireResult<Self> {
        let mut ck = pseudo_v4(src, dst, crate::ipv4::proto::TCP, buf.len() as u16);
        ck.push(buf);
        let sum = ck.finish();
        if sum != 0 {
            return Err(WireError::BadChecksum {
                what: "tcp-v4",
                found: be16(buf, 16, "tcp")?,
                expected: sum,
            });
        }
        Self::decode_raw(buf)
    }

    /// Parse and verify against an IPv6 pseudo-header.
    pub fn decode_v6(buf: &[u8], src: Ipv6Addr, dst: Ipv6Addr) -> WireResult<Self> {
        let mut ck = pseudo_v6(src, dst, crate::ipv4::proto::TCP, buf.len() as u32);
        ck.push(buf);
        let sum = ck.finish();
        if sum != 0 {
            return Err(WireError::BadChecksum {
                what: "tcp-v6",
                found: be16(buf, 16, "tcp")?,
                expected: sum,
            });
        }
        Self::decode_raw(buf)
    }

    /// The amount of sequence space this segment consumes (SYN and FIN each
    /// count as one octet).
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + u32::from(self.flags.syn) + u32::from(self.flags.fin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S6: &str = "2607:fb90:9bda:a425::1";
    const D6: &str = "64:ff9b::be5c:9e04";

    #[test]
    fn syn_with_mss_roundtrip_v6() {
        let mut seg = TcpSegment::new(50000, 80, 1000, 0, TcpFlags::SYN);
        seg.mss = Some(1220);
        let bytes = seg.encode_v6(S6.parse().unwrap(), D6.parse().unwrap());
        let got = TcpSegment::decode_v6(&bytes, S6.parse().unwrap(), D6.parse().unwrap()).unwrap();
        assert_eq!(got, seg);
    }

    #[test]
    fn data_roundtrip_v4() {
        let mut seg = TcpSegment::new(50000, 80, 1001, 501, TcpFlags::PSH_ACK);
        seg.payload = b"GET / HTTP/1.1\r\n\r\n".to_vec();
        let s: Ipv4Addr = "192.168.12.50".parse().unwrap();
        let d: Ipv4Addr = "23.153.8.71".parse().unwrap();
        let bytes = seg.encode_v4(s, d);
        assert_eq!(TcpSegment::decode_v4(&bytes, s, d).unwrap(), seg);
    }

    #[test]
    fn checksum_covers_addresses() {
        let seg = TcpSegment::new(1, 2, 3, 4, TcpFlags::ACK);
        let bytes = seg.encode_v6(S6.parse().unwrap(), D6.parse().unwrap());
        assert!(
            TcpSegment::decode_v6(&bytes, "2001:db8::1".parse().unwrap(), D6.parse().unwrap())
                .is_err()
        );
    }

    #[test]
    fn seq_len_counts_syn_fin() {
        let mut seg = TcpSegment::new(1, 2, 0, 0, TcpFlags::SYN);
        assert_eq!(seg.seq_len(), 1);
        seg.flags = TcpFlags::PSH_ACK;
        seg.payload = vec![0; 10];
        assert_eq!(seg.seq_len(), 10);
        seg.flags = TcpFlags::FIN_ACK;
        assert_eq!(seg.seq_len(), 11);
    }

    #[test]
    fn flags_byte_roundtrip() {
        for b in 0u8..32 {
            assert_eq!(TcpFlags::from_byte(b).to_byte(), b);
        }
    }
}
