//! UDP (RFC 768) with pseudo-header checksums for both IP families.

use crate::checksum::{pseudo_v4, pseudo_v6};
use crate::{be16, need, WireError, WireResult};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Well-known ports the testbed uses.
pub mod port {
    /// DNS.
    pub const DNS: u16 = 53;
    /// DHCPv4 server.
    pub const DHCP_SERVER: u16 = 67;
    /// DHCPv4 client.
    pub const DHCP_CLIENT: u16 = 68;
    /// HTTP (the simulator's portal speaks request/response over TCP 80).
    pub const HTTP: u16 = 80;
}

/// A UDP datagram (header + payload, checksum handled at encode/decode time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Vec<u8>,
}

impl UdpDatagram {
    /// Header length.
    pub const HEADER_LEN: usize = 8;

    /// Build a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    fn encode_raw(&self) -> Vec<u8> {
        let len = (Self::HEADER_LEN + self.payload.len()) as u16;
        let mut out = Vec::with_capacity(len as usize);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Serialize with an IPv4 pseudo-header checksum.
    pub fn encode_v4(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let mut out = self.encode_raw();
        let mut ck = pseudo_v4(src, dst, crate::ipv4::proto::UDP, out.len() as u16);
        ck.push(&out);
        let mut sum = ck.finish();
        if sum == 0 {
            sum = 0xffff; // RFC 768: transmitted all-ones when computed zero
        }
        out[6..8].copy_from_slice(&sum.to_be_bytes());
        out
    }

    /// Serialize with an IPv6 pseudo-header checksum.
    pub fn encode_v6(&self, src: Ipv6Addr, dst: Ipv6Addr) -> Vec<u8> {
        let mut out = self.encode_raw();
        let mut ck = pseudo_v6(src, dst, crate::ipv4::proto::UDP, out.len() as u32);
        ck.push(&out);
        let mut sum = ck.finish();
        if sum == 0 {
            sum = 0xffff;
        }
        out[6..8].copy_from_slice(&sum.to_be_bytes());
        out
    }

    fn decode_common(buf: &[u8]) -> WireResult<(Self, u16)> {
        need(buf, Self::HEADER_LEN, "udp")?;
        let len = usize::from(be16(buf, 4, "udp")?);
        if len < Self::HEADER_LEN || len > buf.len() {
            return Err(WireError::BadLength {
                what: "udp-length",
                claimed: len,
                actual: buf.len(),
            });
        }
        let wire_ck = be16(buf, 6, "udp")?;
        Ok((
            UdpDatagram {
                src_port: be16(buf, 0, "udp")?,
                dst_port: be16(buf, 2, "udp")?,
                payload: buf[Self::HEADER_LEN..len].to_vec(),
            },
            wire_ck,
        ))
    }

    /// Parse and verify against an IPv4 pseudo-header. A zero checksum means
    /// "not computed" and is accepted (RFC 768).
    pub fn decode_v4(buf: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> WireResult<Self> {
        let (dgram, wire_ck) = Self::decode_common(buf)?;
        if wire_ck != 0 {
            let len = usize::from(be16(buf, 4, "udp")?);
            let mut ck = pseudo_v4(src, dst, crate::ipv4::proto::UDP, len as u16);
            ck.push(&buf[..len]);
            let sum = ck.finish();
            // Data including its own checksum verifies to zero.
            if sum != 0 {
                return Err(WireError::BadChecksum {
                    what: "udp-v4",
                    found: wire_ck,
                    expected: sum,
                });
            }
        }
        Ok(dgram)
    }

    /// Parse and verify against an IPv6 pseudo-header. A zero checksum is
    /// *illegal* for UDP over IPv6 (RFC 8200 §8.1) and is rejected.
    pub fn decode_v6(buf: &[u8], src: Ipv6Addr, dst: Ipv6Addr) -> WireResult<Self> {
        let (dgram, wire_ck) = Self::decode_common(buf)?;
        if wire_ck == 0 {
            return Err(WireError::BadChecksum {
                what: "udp-v6-zero",
                found: 0,
                expected: 0xffff,
            });
        }
        let len = usize::from(be16(buf, 4, "udp")?);
        let mut ck = pseudo_v6(src, dst, crate::ipv4::proto::UDP, len as u32);
        ck.push(&buf[..len]);
        let sum = ck.finish();
        if sum != 0 {
            return Err(WireError::BadChecksum {
                what: "udp-v6",
                found: wire_ck,
                expected: sum,
            });
        }
        Ok(dgram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S4: &str = "192.168.12.50";
    const D4: &str = "192.168.12.251";
    const S6: &str = "fd00:976a::50";
    const D6: &str = "fd00:976a::9";

    fn dgram() -> UdpDatagram {
        UdpDatagram::new(40000, port::DNS, b"query".to_vec())
    }

    #[test]
    fn v4_roundtrip() {
        let d = dgram();
        let bytes = d.encode_v4(S4.parse().unwrap(), D4.parse().unwrap());
        let got = UdpDatagram::decode_v4(&bytes, S4.parse().unwrap(), D4.parse().unwrap()).unwrap();
        assert_eq!(got, d);
    }

    #[test]
    fn v6_roundtrip() {
        let d = dgram();
        let bytes = d.encode_v6(S6.parse().unwrap(), D6.parse().unwrap());
        let got = UdpDatagram::decode_v6(&bytes, S6.parse().unwrap(), D6.parse().unwrap()).unwrap();
        assert_eq!(got, d);
    }

    #[test]
    fn v4_wrong_pseudo_header_detected() {
        let d = dgram();
        let bytes = d.encode_v4(S4.parse().unwrap(), D4.parse().unwrap());
        // NAT rewrote the source without fixing the checksum: must fail.
        let err = UdpDatagram::decode_v4(&bytes, "10.9.9.9".parse().unwrap(), D4.parse().unwrap());
        assert!(matches!(err, Err(WireError::BadChecksum { .. })));
    }

    #[test]
    fn v4_zero_checksum_accepted_v6_rejected() {
        let d = dgram();
        let mut bytes = d.encode_v4(S4.parse().unwrap(), D4.parse().unwrap());
        bytes[6] = 0;
        bytes[7] = 0;
        assert!(UdpDatagram::decode_v4(&bytes, S4.parse().unwrap(), D4.parse().unwrap()).is_ok());
        let mut bytes6 = d.encode_v6(S6.parse().unwrap(), D6.parse().unwrap());
        bytes6[6] = 0;
        bytes6[7] = 0;
        assert!(UdpDatagram::decode_v6(&bytes6, S6.parse().unwrap(), D6.parse().unwrap()).is_err());
    }

    #[test]
    fn corrupt_payload_detected() {
        let d = dgram();
        let mut bytes = d.encode_v6(S6.parse().unwrap(), D6.parse().unwrap());
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(UdpDatagram::decode_v6(&bytes, S6.parse().unwrap(), D6.parse().unwrap()).is_err());
    }
}
