//! Borrowed, zero-copy frame views over pooled buffers.
//!
//! [`FrameView::parse`] walks the same Ethernet → IP → transport layering as
//! [`crate::packet::ParsedFrame::parse`] but never copies a payload: every
//! view borrows from the input slice, scalar fields are decoded on the spot,
//! and variable-length content (NDP options, invoking packets, payloads) is
//! kept as a validated sub-slice that can be re-walked or converted on
//! demand.
//!
//! The contract with the owned codecs is *strict observational equality*,
//! machine-checked by `tests/conformance.rs`:
//!
//! * `FrameView::parse(raw)` succeeds exactly when `ParsedFrame::parse(raw)`
//!   does, and `view.to_owned()` equals the owned parse;
//! * on malformed input both return the **same** [`WireError`] value —
//!   including the `need`/`have` counts of truncations and the
//!   `found`/`expected` pair of checksum failures.
//!
//! To keep that guarantee auditable, each view decoder replicates the owned
//! decoder's validation order line for line; the only intentional difference
//! is that cold error paths compute "expected" checksums over three slices
//! (`before-ck`, `[0, 0]`, `after-ck`) instead of zeroing a copied buffer.

use crate::arp::ArpPacket;
use crate::checksum::{checksum, pseudo_v4, pseudo_v6, Checksum};
use crate::ethernet::{EtherType, EthernetFrame};
use crate::icmpv4::Icmpv4Message;
use crate::icmpv6::Icmpv6Message;
use crate::ipv4::{proto, Ipv4Packet};
use crate::ipv6::Ipv6Packet;
use crate::mac::MacAddr;
use crate::ndp::{
    NdpOption, NeighborAdvertisement, NeighborSolicitation, RouterAdvertisement, RouterPreference,
    RouterSolicitation,
};
use crate::packet::{ParsedFrame, L3, L4};
use crate::tcp::{TcpFlags, TcpSegment};
use crate::udp::UdpDatagram;
use crate::{be16, be32, need, WireError, WireResult};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Borrowed Ethernet envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthView<'a> {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
    /// L3 payload bytes (borrowed).
    pub payload: &'a [u8],
}

impl<'a> EthView<'a> {
    /// Parse the 14-byte Ethernet II header; the payload is borrowed.
    pub fn parse(buf: &'a [u8]) -> WireResult<Self> {
        if buf.len() < EthernetFrame::HEADER_LEN {
            return Err(WireError::Truncated {
                what: "ethernet",
                need: EthernetFrame::HEADER_LEN,
                have: buf.len(),
            });
        }
        Ok(EthView {
            dst: MacAddr::decode(&buf[0..6])?,
            src: MacAddr::decode(&buf[6..12])?,
            ethertype: EtherType::from_u16(be16(buf, 12, "ethernet")?),
            payload: &buf[14..],
        })
    }

    /// Convert to the owned frame (copies the payload).
    pub fn to_frame(&self) -> EthernetFrame {
        EthernetFrame {
            dst: self.dst,
            src: self.src,
            ethertype: self.ethertype,
            payload: self.payload.to_vec(),
        }
    }
}

/// Borrowed IPv4 header + payload slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4View<'a> {
    /// Differentiated services code point + ECN byte.
    pub dscp_ecn: u8,
    /// Identification field.
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport payload (borrowed, bounded by total-length).
    pub payload: &'a [u8],
}

impl<'a> Ipv4View<'a> {
    /// Parse, verifying version, lengths and the header checksum without
    /// copying the header.
    pub fn parse(buf: &'a [u8]) -> WireResult<Self> {
        need(buf, Ipv4Packet::HEADER_LEN, "ipv4")?;
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(WireError::BadField {
                what: "ipv4-version",
                value: u64::from(version),
            });
        }
        let ihl = usize::from(buf[0] & 0x0f) * 4;
        if ihl < Ipv4Packet::HEADER_LEN {
            return Err(WireError::BadLength {
                what: "ipv4-ihl",
                claimed: ihl,
                actual: Ipv4Packet::HEADER_LEN,
            });
        }
        need(buf, ihl, "ipv4-options")?;
        let total_len = usize::from(be16(buf, 2, "ipv4")?);
        if total_len < ihl || total_len > buf.len() {
            return Err(WireError::BadLength {
                what: "ipv4-total-length",
                claimed: total_len,
                actual: buf.len(),
            });
        }
        let wire_ck = be16(buf, 10, "ipv4")?;
        let computed = checksum_excluding(&buf[..ihl], 10);
        if wire_ck != computed {
            return Err(WireError::BadChecksum {
                what: "ipv4-header",
                found: wire_ck,
                expected: computed,
            });
        }
        let flags_frag = be16(buf, 6, "ipv4")?;
        Ok(Ipv4View {
            dscp_ecn: buf[1],
            identification: be16(buf, 4, "ipv4")?,
            dont_fragment: flags_frag & 0x4000 != 0,
            ttl: buf[8],
            protocol: buf[9],
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            payload: &buf[ihl..total_len],
        })
    }

    /// Convert to the owned packet (copies the payload).
    pub fn to_packet(&self) -> Ipv4Packet {
        Ipv4Packet {
            dscp_ecn: self.dscp_ecn,
            identification: self.identification,
            dont_fragment: self.dont_fragment,
            ttl: self.ttl,
            protocol: self.protocol,
            src: self.src,
            dst: self.dst,
            payload: self.payload.to_vec(),
        }
    }
}

/// Borrowed IPv6 header + payload slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6View<'a> {
    /// Traffic class byte.
    pub traffic_class: u8,
    /// 20-bit flow label.
    pub flow_label: u32,
    /// Next header / payload protocol.
    pub next_header: u8,
    /// Hop limit.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
    /// Transport payload (borrowed, bounded by payload-length).
    pub payload: &'a [u8],
}

impl<'a> Ipv6View<'a> {
    /// Parse the fixed 40-byte header; the payload is borrowed.
    pub fn parse(buf: &'a [u8]) -> WireResult<Self> {
        need(buf, Ipv6Packet::HEADER_LEN, "ipv6")?;
        let version = buf[0] >> 4;
        if version != 6 {
            return Err(WireError::BadField {
                what: "ipv6-version",
                value: u64::from(version),
            });
        }
        let payload_len = usize::from(be16(buf, 4, "ipv6")?);
        if Ipv6Packet::HEADER_LEN + payload_len > buf.len() {
            return Err(WireError::BadLength {
                what: "ipv6-payload-length",
                claimed: payload_len,
                actual: buf.len() - Ipv6Packet::HEADER_LEN,
            });
        }
        let mut src = [0u8; 16];
        src.copy_from_slice(&buf[8..24]);
        let mut dst = [0u8; 16];
        dst.copy_from_slice(&buf[24..40]);
        Ok(Ipv6View {
            traffic_class: ((buf[0] & 0x0f) << 4) | (buf[1] >> 4),
            flow_label: (u32::from(buf[1] & 0x0f) << 16)
                | (u32::from(buf[2]) << 8)
                | u32::from(buf[3]),
            next_header: buf[6],
            hop_limit: buf[7],
            src: Ipv6Addr::from(src),
            dst: Ipv6Addr::from(dst),
            payload: &buf[Ipv6Packet::HEADER_LEN..Ipv6Packet::HEADER_LEN + payload_len],
        })
    }

    /// Convert to the owned packet (copies the payload).
    pub fn to_packet(&self) -> Ipv6Packet {
        Ipv6Packet {
            traffic_class: self.traffic_class,
            flow_label: self.flow_label,
            next_header: self.next_header,
            hop_limit: self.hop_limit,
            src: self.src,
            dst: self.dst,
            payload: self.payload.to_vec(),
        }
    }
}

/// Borrowed UDP header + payload slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpView<'a> {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload (borrowed, bounded by the UDP length field).
    pub payload: &'a [u8],
}

impl<'a> UdpView<'a> {
    fn parse_common(buf: &'a [u8]) -> WireResult<(Self, u16, usize)> {
        need(buf, UdpDatagram::HEADER_LEN, "udp")?;
        let len = usize::from(be16(buf, 4, "udp")?);
        if len < UdpDatagram::HEADER_LEN || len > buf.len() {
            return Err(WireError::BadLength {
                what: "udp-length",
                claimed: len,
                actual: buf.len(),
            });
        }
        let wire_ck = be16(buf, 6, "udp")?;
        Ok((
            UdpView {
                src_port: be16(buf, 0, "udp")?,
                dst_port: be16(buf, 2, "udp")?,
                payload: &buf[UdpDatagram::HEADER_LEN..len],
            },
            wire_ck,
            len,
        ))
    }

    /// Parse and verify against an IPv4 pseudo-header (zero checksum
    /// accepted, RFC 768).
    pub fn parse_v4(buf: &'a [u8], src: Ipv4Addr, dst: Ipv4Addr) -> WireResult<Self> {
        let (view, wire_ck, len) = Self::parse_common(buf)?;
        if wire_ck != 0 {
            let mut ck = pseudo_v4(src, dst, proto::UDP, len as u16);
            ck.push(&buf[..len]);
            let sum = ck.finish();
            if sum != 0 {
                return Err(WireError::BadChecksum {
                    what: "udp-v4",
                    found: wire_ck,
                    expected: sum,
                });
            }
        }
        Ok(view)
    }

    /// Parse and verify against an IPv6 pseudo-header (zero checksum
    /// rejected, RFC 8200 §8.1).
    pub fn parse_v6(buf: &'a [u8], src: Ipv6Addr, dst: Ipv6Addr) -> WireResult<Self> {
        let (view, wire_ck, len) = Self::parse_common(buf)?;
        if wire_ck == 0 {
            return Err(WireError::BadChecksum {
                what: "udp-v6-zero",
                found: 0,
                expected: 0xffff,
            });
        }
        let mut ck = pseudo_v6(src, dst, proto::UDP, len as u32);
        ck.push(&buf[..len]);
        let sum = ck.finish();
        if sum != 0 {
            return Err(WireError::BadChecksum {
                what: "udp-v6",
                found: wire_ck,
                expected: sum,
            });
        }
        Ok(view)
    }

    /// Convert to the owned datagram (copies the payload).
    pub fn to_datagram(&self) -> UdpDatagram {
        UdpDatagram {
            src_port: self.src_port,
            dst_port: self.dst_port,
            payload: self.payload.to_vec(),
        }
    }
}

/// Borrowed TCP header + payload slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpView<'a> {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// MSS option, if present.
    pub mss: Option<u16>,
    /// Payload bytes (borrowed, after the data offset).
    pub payload: &'a [u8],
}

impl<'a> TcpView<'a> {
    fn parse_raw(buf: &'a [u8]) -> WireResult<Self> {
        need(buf, TcpSegment::HEADER_LEN, "tcp")?;
        let data_off = usize::from(buf[12] >> 4) * 4;
        if data_off < TcpSegment::HEADER_LEN || data_off > buf.len() {
            return Err(WireError::BadLength {
                what: "tcp-data-offset",
                claimed: data_off,
                actual: buf.len(),
            });
        }
        let mut mss = None;
        let mut opts = &buf[TcpSegment::HEADER_LEN..data_off];
        while let Some(&kind) = opts.first() {
            match kind {
                0 => break,
                1 => opts = &opts[1..],
                2 => {
                    need(opts, 4, "tcp-mss")?;
                    mss = Some(u16::from_be_bytes([opts[2], opts[3]]));
                    opts = &opts[4..];
                }
                _ => {
                    need(opts, 2, "tcp-opt")?;
                    let l = usize::from(opts[1]).max(2);
                    need(opts, l, "tcp-opt")?;
                    opts = &opts[l..];
                }
            }
        }
        Ok(TcpView {
            src_port: be16(buf, 0, "tcp")?,
            dst_port: be16(buf, 2, "tcp")?,
            seq: be32(buf, 4, "tcp")?,
            ack: be32(buf, 8, "tcp")?,
            flags: TcpFlags::from_byte(buf[13]),
            window: be16(buf, 14, "tcp")?,
            mss,
            payload: &buf[data_off..],
        })
    }

    /// Parse and verify against an IPv4 pseudo-header.
    pub fn parse_v4(buf: &'a [u8], src: Ipv4Addr, dst: Ipv4Addr) -> WireResult<Self> {
        let mut ck = pseudo_v4(src, dst, proto::TCP, buf.len() as u16);
        ck.push(buf);
        let sum = ck.finish();
        if sum != 0 {
            return Err(WireError::BadChecksum {
                what: "tcp-v4",
                found: be16(buf, 16, "tcp")?,
                expected: sum,
            });
        }
        Self::parse_raw(buf)
    }

    /// Parse and verify against an IPv6 pseudo-header.
    pub fn parse_v6(buf: &'a [u8], src: Ipv6Addr, dst: Ipv6Addr) -> WireResult<Self> {
        let mut ck = pseudo_v6(src, dst, proto::TCP, buf.len() as u32);
        ck.push(buf);
        let sum = ck.finish();
        if sum != 0 {
            return Err(WireError::BadChecksum {
                what: "tcp-v6",
                found: be16(buf, 16, "tcp")?,
                expected: sum,
            });
        }
        Self::parse_raw(buf)
    }

    /// Convert to the owned segment (copies the payload).
    pub fn to_segment(&self) -> TcpSegment {
        TcpSegment {
            src_port: self.src_port,
            dst_port: self.dst_port,
            seq: self.seq,
            ack: self.ack,
            flags: self.flags,
            window: self.window,
            mss: self.mss,
            payload: self.payload.to_vec(),
        }
    }
}

/// Borrowed ICMPv4 message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Icmp4View<'a> {
    /// Echo request (type 8).
    EchoRequest {
        /// Identifier.
        ident: u16,
        /// Sequence number.
        seq: u16,
        /// Payload (borrowed).
        payload: &'a [u8],
    },
    /// Echo reply (type 0).
    EchoReply {
        /// Identifier.
        ident: u16,
        /// Sequence number.
        seq: u16,
        /// Payload (borrowed).
        payload: &'a [u8],
    },
    /// Destination unreachable (type 3).
    DestinationUnreachable {
        /// Code.
        code: u8,
        /// Invoking packet excerpt (borrowed).
        invoking: &'a [u8],
    },
    /// Time exceeded (type 11).
    TimeExceeded {
        /// Code.
        code: u8,
        /// Invoking packet excerpt (borrowed).
        invoking: &'a [u8],
    },
}

impl<'a> Icmp4View<'a> {
    /// Parse and verify the message checksum without copying.
    pub fn parse(buf: &'a [u8]) -> WireResult<Self> {
        need(buf, 8, "icmpv4")?;
        if checksum(buf) != 0 {
            return Err(WireError::BadChecksum {
                what: "icmpv4",
                found: be16(buf, 2, "icmpv4")?,
                expected: checksum_excluding(buf, 2),
            });
        }
        match (buf[0], buf[1]) {
            (8, 0) => Ok(Icmp4View::EchoRequest {
                ident: be16(buf, 4, "icmpv4")?,
                seq: be16(buf, 6, "icmpv4")?,
                payload: &buf[8..],
            }),
            (0, 0) => Ok(Icmp4View::EchoReply {
                ident: be16(buf, 4, "icmpv4")?,
                seq: be16(buf, 6, "icmpv4")?,
                payload: &buf[8..],
            }),
            (3, code) => Ok(Icmp4View::DestinationUnreachable {
                code,
                invoking: &buf[8..],
            }),
            (11, code) => Ok(Icmp4View::TimeExceeded {
                code,
                invoking: &buf[8..],
            }),
            (t, _) => Err(WireError::BadField {
                what: "icmpv4-type",
                value: u64::from(t),
            }),
        }
    }

    /// Convert to the owned message (copies payloads).
    pub fn to_message(&self) -> Icmpv4Message {
        match *self {
            Icmp4View::EchoRequest {
                ident,
                seq,
                payload,
            } => Icmpv4Message::EchoRequest {
                ident,
                seq,
                payload: payload.to_vec(),
            },
            Icmp4View::EchoReply {
                ident,
                seq,
                payload,
            } => Icmpv4Message::EchoReply {
                ident,
                seq,
                payload: payload.to_vec(),
            },
            Icmp4View::DestinationUnreachable { code, invoking } => {
                Icmpv4Message::DestinationUnreachable {
                    code,
                    invoking: invoking.to_vec(),
                }
            }
            Icmp4View::TimeExceeded { code, invoking } => Icmpv4Message::TimeExceeded {
                code,
                invoking: invoking.to_vec(),
            },
        }
    }
}

/// A validated, non-allocating run of NDP options.
///
/// Construction walks the whole slice once, replicating every error of
/// [`NdpOption::decode_all`]; afterwards [`NdpOptionsView::iter`] and
/// [`NdpOptionsView::to_options`] re-walk infallibly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdpOptionsView<'a> {
    raw: &'a [u8],
}

/// One borrowed NDP option: its type byte and the full 8-octet-aligned body
/// (including the type/length bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdpOptionView<'a> {
    /// Option type.
    pub ty: u8,
    /// The whole option (type, length, body, padding).
    pub body: &'a [u8],
}

impl<'a> NdpOptionsView<'a> {
    /// Validate the option run; the slice is stored for later re-walks.
    pub fn parse(buf: &'a [u8]) -> WireResult<Self> {
        let mut rest = buf;
        while !rest.is_empty() {
            need(rest, 2, "ndp-option")?;
            let ty = rest[0];
            let len = usize::from(rest[1]) * 8;
            if len == 0 {
                return Err(WireError::BadLength {
                    what: "ndp-option-zero-len",
                    claimed: 0,
                    actual: rest.len(),
                });
            }
            need(rest, len, "ndp-option")?;
            let body = &rest[..len];
            validate_option_body(ty, body)?;
            rest = &rest[len..];
        }
        Ok(NdpOptionsView { raw: buf })
    }

    /// Iterate over the validated options.
    pub fn iter(&self) -> impl Iterator<Item = NdpOptionView<'a>> + '_ {
        let mut rest = self.raw;
        std::iter::from_fn(move || {
            if rest.is_empty() {
                return None;
            }
            let len = usize::from(rest[1]) * 8;
            let opt = NdpOptionView {
                ty: rest[0],
                body: &rest[..len],
            };
            rest = &rest[len..];
            Some(opt)
        })
    }

    /// Build the owned option list. This re-walks the raw bytes with its own
    /// per-type constructors (it does not call [`NdpOption::decode_all`]), so
    /// the owned and borrowed paths stay independently implemented.
    pub fn to_options(&self) -> Vec<NdpOption> {
        self.iter().map(|o| o.to_option()).collect()
    }
}

impl<'a> NdpOptionView<'a> {
    /// Build the owned option from the validated body.
    pub fn to_option(&self) -> NdpOption {
        let body = self.body;
        match self.ty {
            1 => NdpOption::SourceLinkLayer(MacAddr::decode(&body[2..8]).expect("validated")),
            2 => NdpOption::TargetLinkLayer(MacAddr::decode(&body[2..8]).expect("validated")),
            3 => {
                let mut prefix = [0u8; 16];
                prefix.copy_from_slice(&body[16..32]);
                NdpOption::PrefixInformation {
                    prefix_len: body[2],
                    on_link: body[3] & 0x80 != 0,
                    autonomous: body[3] & 0x40 != 0,
                    valid_lifetime: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                    preferred_lifetime: u32::from_be_bytes([body[8], body[9], body[10], body[11]]),
                    prefix: Ipv6Addr::from(prefix),
                }
            }
            5 => NdpOption::Mtu(u32::from_be_bytes([body[4], body[5], body[6], body[7]])),
            25 => {
                let lifetime = u32::from_be_bytes([body[4], body[5], body[6], body[7]]);
                let mut servers = Vec::new();
                let mut pos = 8;
                while pos + 16 <= body.len() {
                    let mut a = [0u8; 16];
                    a.copy_from_slice(&body[pos..pos + 16]);
                    servers.push(Ipv6Addr::from(a));
                    pos += 16;
                }
                NdpOption::Rdnss { lifetime, servers }
            }
            31 => {
                let lifetime = u32::from_be_bytes([body[4], body[5], body[6], body[7]]);
                let mut domains = Vec::new();
                let mut pos = 8;
                while pos < body.len() && body[pos] != 0 {
                    let mut name = String::new();
                    loop {
                        let len = usize::from(body[pos]);
                        pos += 1;
                        if len == 0 {
                            break;
                        }
                        if !name.is_empty() {
                            name.push('.');
                        }
                        name.push_str(&String::from_utf8_lossy(&body[pos..pos + len]));
                        pos += len;
                    }
                    domains.push(name);
                }
                NdpOption::Dnssl { lifetime, domains }
            }
            38 => {
                let scaled = u16::from_be_bytes([body[2], body[3]]);
                let prefix_len = match scaled & 0b111 {
                    0 => 96,
                    1 => 64,
                    2 => 56,
                    3 => 48,
                    4 => 40,
                    _ => 32,
                };
                let mut o = [0u8; 16];
                o[..12].copy_from_slice(&body[4..16]);
                NdpOption::Pref64 {
                    lifetime: (scaled >> 3) * 8,
                    prefix: Ipv6Addr::from(o),
                    prefix_len,
                }
            }
            other => NdpOption::Unknown(other, body[2..].to_vec()),
        }
    }
}

/// Replicate the per-type validation (and the DNSSL label walk) of
/// [`NdpOption::decode_all`] without building any owned value.
fn validate_option_body(ty: u8, body: &[u8]) -> WireResult<()> {
    match ty {
        1 | 2 => {
            // `body` is at least 8 bytes here (length unit ≥ 1), so the MAC
            // slice always decodes; kept for shape parity with decode_all.
            MacAddr::decode(&body[2..8])?;
        }
        3 => need(body, 32, "ndp-pio")?,
        5 => need(body, 8, "ndp-mtu")?,
        25 => need(body, 8, "ndp-rdnss")?,
        31 => {
            need(body, 8, "ndp-dnssl")?;
            let mut pos = 8;
            while pos < body.len() && body[pos] != 0 {
                loop {
                    need(body, pos + 1, "ndp-dnssl")?;
                    let len = usize::from(body[pos]);
                    pos += 1;
                    if len == 0 {
                        break;
                    }
                    need(body, pos + len, "ndp-dnssl")?;
                    pos += len;
                }
            }
        }
        38 => need(body, 16, "ndp-pref64")?,
        _ => {}
    }
    Ok(())
}

/// Borrowed Router Advertisement body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaView<'a> {
    /// Suggested hop limit.
    pub cur_hop_limit: u8,
    /// M flag.
    pub managed: bool,
    /// O flag.
    pub other_config: bool,
    /// Default-router lifetime in seconds.
    pub router_lifetime: u16,
    /// RFC 4191 preference.
    pub preference: RouterPreference,
    /// Reachable time (ms).
    pub reachable_time: u32,
    /// Retransmission timer (ms).
    pub retrans_timer: u32,
    /// Validated options.
    pub options: NdpOptionsView<'a>,
}

impl<'a> RaView<'a> {
    fn parse(buf: &'a [u8]) -> WireResult<Self> {
        need(buf, 12, "ndp-ra")?;
        Ok(RaView {
            cur_hop_limit: buf[0],
            managed: buf[1] & 0x80 != 0,
            other_config: buf[1] & 0x40 != 0,
            preference: RouterPreference::from_bits(buf[1] >> 3),
            router_lifetime: be16(buf, 2, "ndp-ra")?,
            reachable_time: be32(buf, 4, "ndp-ra")?,
            retrans_timer: be32(buf, 8, "ndp-ra")?,
            options: NdpOptionsView::parse(&buf[12..])?,
        })
    }

    /// Convert to the owned body.
    pub fn to_ra(&self) -> RouterAdvertisement {
        RouterAdvertisement {
            cur_hop_limit: self.cur_hop_limit,
            managed: self.managed,
            other_config: self.other_config,
            router_lifetime: self.router_lifetime,
            preference: self.preference,
            reachable_time: self.reachable_time,
            retrans_timer: self.retrans_timer,
            options: self.options.to_options(),
        }
    }
}

/// Borrowed ICMPv6 message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Icmp6View<'a> {
    /// Type 1: destination unreachable.
    DestinationUnreachable {
        /// Code.
        code: u8,
        /// Invoking packet excerpt (borrowed).
        invoking: &'a [u8],
    },
    /// Type 128: echo request.
    EchoRequest {
        /// Identifier.
        ident: u16,
        /// Sequence.
        seq: u16,
        /// Payload (borrowed).
        payload: &'a [u8],
    },
    /// Type 129: echo reply.
    EchoReply {
        /// Identifier.
        ident: u16,
        /// Sequence.
        seq: u16,
        /// Payload (borrowed).
        payload: &'a [u8],
    },
    /// Type 133: router solicitation.
    RouterSolicitation {
        /// Validated options.
        options: NdpOptionsView<'a>,
    },
    /// Type 134: router advertisement.
    RouterAdvertisement(RaView<'a>),
    /// Type 135: neighbor solicitation.
    NeighborSolicitation {
        /// Target address.
        target: Ipv6Addr,
        /// Validated options.
        options: NdpOptionsView<'a>,
    },
    /// Type 136: neighbor advertisement.
    NeighborAdvertisement {
        /// R flag.
        router: bool,
        /// S flag.
        solicited: bool,
        /// O flag.
        override_flag: bool,
        /// Target address.
        target: Ipv6Addr,
        /// Validated options.
        options: NdpOptionsView<'a>,
    },
}

impl<'a> Icmp6View<'a> {
    /// Parse and verify the pseudo-header checksum without copying.
    pub fn parse(buf: &'a [u8], src: Ipv6Addr, dst: Ipv6Addr) -> WireResult<Self> {
        need(buf, 4, "icmpv6")?;
        let mut ck = pseudo_v6(src, dst, proto::ICMPV6, buf.len() as u32);
        ck.push(buf);
        if ck.finish() != 0 {
            let mut again = pseudo_v6(src, dst, proto::ICMPV6, buf.len() as u32);
            again.push(&buf[..2]);
            again.push(&[0, 0]);
            again.push(&buf[4..]);
            return Err(WireError::BadChecksum {
                what: "icmpv6",
                found: be16(buf, 2, "icmpv6")?,
                expected: again.finish(),
            });
        }
        let read_target = |off: usize| -> WireResult<Ipv6Addr> {
            need(buf, off + 16, "icmpv6-target")?;
            let mut a = [0u8; 16];
            a.copy_from_slice(&buf[off..off + 16]);
            Ok(Ipv6Addr::from(a))
        };
        match buf[0] {
            1 => {
                need(buf, 8, "icmpv6-unreach")?;
                Ok(Icmp6View::DestinationUnreachable {
                    code: buf[1],
                    invoking: &buf[8..],
                })
            }
            128 | 129 => {
                need(buf, 8, "icmpv6-echo")?;
                let ident = be16(buf, 4, "icmpv6-echo")?;
                let seq = be16(buf, 6, "icmpv6-echo")?;
                let payload = &buf[8..];
                if buf[0] == 128 {
                    Ok(Icmp6View::EchoRequest {
                        ident,
                        seq,
                        payload,
                    })
                } else {
                    Ok(Icmp6View::EchoReply {
                        ident,
                        seq,
                        payload,
                    })
                }
            }
            133 => {
                need(buf, 8, "icmpv6-rs")?;
                Ok(Icmp6View::RouterSolicitation {
                    options: NdpOptionsView::parse(&buf[8..])?,
                })
            }
            134 => Ok(Icmp6View::RouterAdvertisement(RaView::parse(&buf[4..])?)),
            135 => {
                need(buf, 24, "icmpv6-ns")?;
                Ok(Icmp6View::NeighborSolicitation {
                    target: read_target(8)?,
                    options: NdpOptionsView::parse(&buf[24..])?,
                })
            }
            136 => {
                need(buf, 24, "icmpv6-na")?;
                let _reserved = be32(buf, 4, "icmpv6-na")? & 0x1fff_ffff;
                Ok(Icmp6View::NeighborAdvertisement {
                    router: buf[4] & 0x80 != 0,
                    solicited: buf[4] & 0x40 != 0,
                    override_flag: buf[4] & 0x20 != 0,
                    target: read_target(8)?,
                    options: NdpOptionsView::parse(&buf[24..])?,
                })
            }
            t => Err(WireError::BadField {
                what: "icmpv6-type",
                value: u64::from(t),
            }),
        }
    }

    /// Convert to the owned message (copies payloads and option lists).
    pub fn to_message(&self) -> Icmpv6Message {
        match *self {
            Icmp6View::DestinationUnreachable { code, invoking } => {
                Icmpv6Message::DestinationUnreachable {
                    code,
                    invoking: invoking.to_vec(),
                }
            }
            Icmp6View::EchoRequest {
                ident,
                seq,
                payload,
            } => Icmpv6Message::EchoRequest {
                ident,
                seq,
                payload: payload.to_vec(),
            },
            Icmp6View::EchoReply {
                ident,
                seq,
                payload,
            } => Icmpv6Message::EchoReply {
                ident,
                seq,
                payload: payload.to_vec(),
            },
            Icmp6View::RouterSolicitation { options } => {
                Icmpv6Message::RouterSolicitation(RouterSolicitation {
                    options: options.to_options(),
                })
            }
            Icmp6View::RouterAdvertisement(ra) => Icmpv6Message::RouterAdvertisement(ra.to_ra()),
            Icmp6View::NeighborSolicitation { target, options } => {
                Icmpv6Message::NeighborSolicitation(NeighborSolicitation {
                    target,
                    options: options.to_options(),
                })
            }
            Icmp6View::NeighborAdvertisement {
                router,
                solicited,
                override_flag,
                target,
                options,
            } => Icmpv6Message::NeighborAdvertisement(NeighborAdvertisement {
                router,
                solicited,
                override_flag,
                target,
                options: options.to_options(),
            }),
        }
    }
}

/// Borrowed network layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum L3View<'a> {
    /// ARP packet ([`ArpPacket::decode`] is already allocation-free).
    Arp(ArpPacket),
    /// IPv4 view.
    V4(Ipv4View<'a>),
    /// IPv6 view.
    V6(Ipv6View<'a>),
    /// Unrecognized ethertype (payload borrowed).
    Other(u16, &'a [u8]),
}

/// Borrowed transport layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum L4View<'a> {
    /// UDP view.
    Udp(UdpView<'a>),
    /// TCP view.
    Tcp(TcpView<'a>),
    /// ICMPv4 view.
    Icmp4(Icmp4View<'a>),
    /// ICMPv6 view.
    Icmp6(Icmp6View<'a>),
    /// No transport content parsed.
    None,
}

/// A frame parsed through Ethernet → IP → transport without copying a byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameView<'a> {
    /// The Ethernet envelope.
    pub eth: EthView<'a>,
    /// Network layer.
    pub l3: L3View<'a>,
    /// Transport layer.
    pub l4: L4View<'a>,
}

impl<'a> FrameView<'a> {
    /// Parse a raw frame through all layers, verifying every checksum,
    /// with the exact accept/reject behaviour of [`ParsedFrame::parse`].
    pub fn parse(raw: &'a [u8]) -> WireResult<FrameView<'a>> {
        let eth = EthView::parse(raw)?;
        let (l3, l4) = match eth.ethertype {
            EtherType::Arp => (L3View::Arp(ArpPacket::decode(eth.payload)?), L4View::None),
            EtherType::Ipv4 => {
                let ip = Ipv4View::parse(eth.payload)?;
                let l4 = match ip.protocol {
                    proto::UDP => L4View::Udp(UdpView::parse_v4(ip.payload, ip.src, ip.dst)?),
                    proto::TCP => L4View::Tcp(TcpView::parse_v4(ip.payload, ip.src, ip.dst)?),
                    proto::ICMP => L4View::Icmp4(Icmp4View::parse(ip.payload)?),
                    _ => L4View::None,
                };
                (L3View::V4(ip), l4)
            }
            EtherType::Ipv6 => {
                let ip = Ipv6View::parse(eth.payload)?;
                let l4 = match ip.next_header {
                    proto::UDP => L4View::Udp(UdpView::parse_v6(ip.payload, ip.src, ip.dst)?),
                    proto::TCP => L4View::Tcp(TcpView::parse_v6(ip.payload, ip.src, ip.dst)?),
                    proto::ICMPV6 => L4View::Icmp6(Icmp6View::parse(ip.payload, ip.src, ip.dst)?),
                    _ => L4View::None,
                };
                (L3View::V6(ip), l4)
            }
            EtherType::Other(v) => (L3View::Other(v, eth.payload), L4View::None),
        };
        Ok(FrameView { eth, l3, l4 })
    }

    /// Convert to the owned [`ParsedFrame`] (copies every payload).
    pub fn to_parsed(&self) -> ParsedFrame {
        let l3 = match &self.l3 {
            L3View::Arp(a) => L3::Arp(a.clone()),
            L3View::V4(v) => L3::V4(v.to_packet()),
            L3View::V6(v) => L3::V6(v.to_packet()),
            L3View::Other(et, p) => L3::Other(*et, p.to_vec()),
        };
        let l4 = match &self.l4 {
            L4View::Udp(u) => L4::Udp(u.to_datagram()),
            L4View::Tcp(t) => L4::Tcp(t.to_segment()),
            L4View::Icmp4(m) => L4::Icmp4(m.to_message()),
            L4View::Icmp6(m) => L4::Icmp6(m.to_message()),
            L4View::None => L4::None,
        };
        ParsedFrame {
            eth: self.eth.to_frame(),
            l3,
            l4,
        }
    }

    /// The IPv6 source, if this is an IPv6 frame.
    pub fn v6_src(&self) -> Option<Ipv6Addr> {
        match &self.l3 {
            L3View::V6(p) => Some(p.src),
            _ => None,
        }
    }

    /// The IPv4 source, if this is an IPv4 frame.
    pub fn v4_src(&self) -> Option<Ipv4Addr> {
        match &self.l3 {
            L3View::V4(p) => Some(p.src),
            _ => None,
        }
    }
}

/// Checksum of `data` with the 16-bit word at byte offset `ck_off` treated as
/// zero — the allocation-free equivalent of "copy, zero the checksum field,
/// recompute" used by the owned decoders' error paths.
fn checksum_excluding(data: &[u8], ck_off: usize) -> u16 {
    let mut c = Checksum::new();
    c.push(&data[..ck_off]);
    c.push(&[0, 0]);
    c.push(&data[ck_off + 2..]);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{build_icmpv6, build_udp_v4};

    fn mac(n: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, n])
    }

    #[test]
    fn view_matches_owned_on_udp_v4() {
        let raw = build_udp_v4(
            mac(1),
            mac(2),
            "192.168.12.50".parse().unwrap(),
            "192.168.12.251".parse().unwrap(),
            &UdpDatagram::new(68, 67, b"discover".to_vec()),
        );
        let owned = ParsedFrame::parse(&raw).unwrap();
        let view = FrameView::parse(&raw).unwrap();
        assert_eq!(view.to_parsed(), owned);
        match view.l4 {
            L4View::Udp(u) => assert_eq!(u.payload, b"discover"),
            other => panic!("unexpected l4: {other:?}"),
        }
    }

    #[test]
    fn view_matches_owned_on_ndp_ra() {
        let mut ra = RouterAdvertisement::new(1800);
        ra.preference = RouterPreference::Low;
        ra.options.push(NdpOption::Rdnss {
            lifetime: 300,
            servers: vec!["fd00:976a::9".parse().unwrap()],
        });
        let msg = Icmpv6Message::RouterAdvertisement(ra);
        let raw = build_icmpv6(
            mac(1),
            MacAddr::for_ipv6_multicast(crate::icmpv6::all_nodes()),
            "fe80::1".parse().unwrap(),
            crate::icmpv6::all_nodes(),
            &msg,
        );
        let owned = ParsedFrame::parse(&raw).unwrap();
        let view = FrameView::parse(&raw).unwrap();
        assert_eq!(view.to_parsed(), owned);
    }

    #[test]
    fn truncations_agree_with_owned() {
        let raw = build_udp_v4(
            mac(1),
            mac(2),
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            &UdpDatagram::new(1, 2, vec![7; 32]),
        );
        for cut in 0..raw.len() {
            let owned = ParsedFrame::parse(&raw[..cut]);
            let view = FrameView::parse(&raw[..cut]).map(|v| v.to_parsed());
            assert_eq!(owned, view, "cut at {cut}");
        }
    }
}
