//! Differential codec-conformance suite: the borrowed [`FrameView`] layer
//! against the owned [`ParsedFrame`] decoders, over the committed corpus in
//! `tests/corpus/` plus proptest-generated frames.
//!
//! Invariants proven here (the tentpole's acceptance criteria):
//!
//! 1. **Parse equality** — on every input, both paths accept or reject
//!    together; on accept, `view.to_parsed()` equals the owned parse.
//! 2. **Error identity** — on reject, both return the *same* `WireError`
//!    value, for every truncation point and every single-byte corruption.
//! 3. **Byte-identical re-emission** — rebuilding each corpus/proptest frame
//!    from either parse through the owned builders reproduces the original
//!    bytes exactly.
//! 4. **Checksum kernel equality** — scalar and SWAR checksums agree on
//!    every corpus frame, every slice of one, and random data.
//! 5. **Trace text stability** — `summarize`/`classify` (now view-backed)
//!    match a reference implementation over the owned decoders.

use proptest::prelude::*;
use v6wire::checksum::{checksum_with, Kernel};
use v6wire::icmpv6::all_nodes;
use v6wire::mac::MacAddr;
use v6wire::ndp::{NdpOption, RouterAdvertisement, RouterPreference};
use v6wire::packet::{
    build_arp, build_icmpv4, build_icmpv6, build_tcp_v4, build_tcp_v6, build_udp_v4, build_udp_v6,
    classify, summarize,
};
use v6wire::view::FrameView;
use v6wire::{
    ArpPacket, Icmpv4Message, Icmpv6Message, ParsedFrame, TcpFlags, TcpSegment, UdpDatagram, L3, L4,
};

/// The committed good frames: every one must parse on both paths.
const GOOD_FRAMES: &[(&str, &[u8])] = &[
    (
        "dhcp_discover_opt108",
        include_bytes!("../../../tests/corpus/frame_dhcp_discover_opt108.bin"),
    ),
    (
        "dhcp_offer_opt108",
        include_bytes!("../../../tests/corpus/frame_dhcp_offer_opt108.bin"),
    ),
    (
        "ra_full",
        include_bytes!("../../../tests/corpus/frame_ra_full.bin"),
    ),
    (
        "dns64_aaaa",
        include_bytes!("../../../tests/corpus/frame_dns64_aaaa.bin"),
    ),
    (
        "poisoned_a",
        include_bytes!("../../../tests/corpus/frame_poisoned_a.bin"),
    ),
    (
        "arp_request",
        include_bytes!("../../../tests/corpus/frame_arp_request.bin"),
    ),
    (
        "tcp_syn_v6",
        include_bytes!("../../../tests/corpus/frame_tcp_syn_v6.bin"),
    ),
    (
        "icmpv6_echo",
        include_bytes!("../../../tests/corpus/frame_icmpv6_echo.bin"),
    ),
    (
        "icmpv4_unreach",
        include_bytes!("../../../tests/corpus/frame_icmpv4_unreach.bin"),
    ),
    (
        "ndp_ns",
        include_bytes!("../../../tests/corpus/frame_ndp_ns.bin"),
    ),
];

/// The committed adversarial frames: every one must fail identically.
const BAD_FRAMES: &[(&str, &[u8])] = &[
    (
        "bad_truncated",
        include_bytes!("../../../tests/corpus/frame_bad_truncated.bin"),
    ),
    (
        "bad_checksum",
        include_bytes!("../../../tests/corpus/frame_bad_checksum.bin"),
    ),
];

/// Both parse paths applied to the same bytes, results compared. Returns the
/// owned parse when both accept.
fn differential(raw: &[u8]) -> Option<ParsedFrame> {
    let owned = ParsedFrame::parse(raw);
    let view = FrameView::parse(raw);
    match (&owned, &view) {
        (Ok(o), Ok(v)) => assert_eq!(*o, v.to_parsed(), "parse divergence"),
        (Err(oe), Err(ve)) => assert_eq!(oe, ve, "error divergence"),
        _ => panic!(
            "accept/reject divergence: owned {:?} vs view {:?}",
            owned.as_ref().map(|_| "ok"),
            view.as_ref().map(|_| "ok")
        ),
    }
    owned.ok()
}

/// Rebuild a parsed frame through the owned builders — the re-emission half
/// of the differential loop. Covers every layer combination in the corpus.
fn reemit(p: &ParsedFrame) -> Vec<u8> {
    let (smac, dmac) = (p.eth.src, p.eth.dst);
    match (&p.l3, &p.l4) {
        (L3::Arp(a), L4::None) => build_arp(smac, dmac, a),
        (L3::V4(ip), L4::Udp(u)) => build_udp_v4(smac, dmac, ip.src, ip.dst, u),
        (L3::V4(ip), L4::Tcp(t)) => build_tcp_v4(smac, dmac, ip.src, ip.dst, t),
        (L3::V4(ip), L4::Icmp4(m)) => build_icmpv4(smac, dmac, ip.src, ip.dst, m),
        (L3::V6(ip), L4::Udp(u)) => build_udp_v6(smac, dmac, ip.src, ip.dst, u),
        (L3::V6(ip), L4::Tcp(t)) => build_tcp_v6(smac, dmac, ip.src, ip.dst, t),
        (L3::V6(ip), L4::Icmp6(m)) => build_icmpv6(smac, dmac, ip.src, ip.dst, m),
        other => panic!("frame shape not re-emittable: {other:?}"),
    }
}

/// Reference `summarize` over the owned decoders — the pre-view
/// implementation, kept here so the view-backed production path is pinned
/// to its exact output.
fn summarize_owned(raw: &[u8]) -> String {
    let parsed = match ParsedFrame::parse(raw) {
        Ok(p) => p,
        Err(e) => {
            let what = match e {
                v6wire::WireError::Truncated { what, .. } => what,
                v6wire::WireError::BadField { what, .. } => what,
                v6wire::WireError::BadChecksum { what, .. } => what,
                v6wire::WireError::BadLength { what, .. } => what,
            };
            return format!("corrupt: {what}");
        }
    };
    let udp_hint = |s: u16, d: u16| match (s, d) {
        (_, 53) | (53, _) => " (DNS)",
        (68, 67) | (67, 68) => " (DHCP)",
        _ => "",
    };
    let tcp_flags = |t: &TcpSegment| {
        let mut f = String::new();
        if t.flags.syn {
            f.push('S');
        }
        if t.flags.fin {
            f.push('F');
        }
        if t.flags.rst {
            f.push('R');
        }
        if t.flags.psh {
            f.push('P');
        }
        if t.flags.ack {
            f.push('.');
        }
        format!("[{f}] len={}", t.payload.len())
    };
    match (&parsed.l3, &parsed.l4) {
        (L3::Arp(a), _) => match a.op {
            v6wire::ArpOp::Request => format!("ARP who-has {}", a.target_ip),
            v6wire::ArpOp::Reply => format!("ARP {} is-at {}", a.sender_ip, a.sender_mac),
        },
        (L3::V4(ip), L4::Udp(u)) => format!(
            "IPv4 {}:{} > {}:{} UDP{}",
            ip.src,
            u.src_port,
            ip.dst,
            u.dst_port,
            udp_hint(u.src_port, u.dst_port)
        ),
        (L3::V6(ip), L4::Udp(u)) => format!(
            "IPv6 [{}]:{} > [{}]:{} UDP{}",
            ip.src,
            u.src_port,
            ip.dst,
            u.dst_port,
            udp_hint(u.src_port, u.dst_port)
        ),
        (L3::V4(ip), L4::Tcp(t)) => format!(
            "IPv4 {}:{} > {}:{} TCP {}",
            ip.src,
            t.src_port,
            ip.dst,
            t.dst_port,
            tcp_flags(t)
        ),
        (L3::V6(ip), L4::Tcp(t)) => format!(
            "IPv6 [{}]:{} > [{}]:{} TCP {}",
            ip.src,
            t.src_port,
            ip.dst,
            t.dst_port,
            tcp_flags(t)
        ),
        (L3::V4(ip), L4::Icmp4(m)) => {
            let name = match m {
                Icmpv4Message::EchoRequest { .. } => "ICMP echo request",
                Icmpv4Message::EchoReply { .. } => "ICMP echo reply",
                Icmpv4Message::DestinationUnreachable { .. } => "ICMP unreachable",
                Icmpv4Message::TimeExceeded { .. } => "ICMP time exceeded",
            };
            format!("IPv4 {} > {} {}", ip.src, ip.dst, name)
        }
        (L3::V6(ip), L4::Icmp6(m)) => {
            let name = match m {
                Icmpv6Message::EchoRequest { .. } => "ICMPv6 echo request",
                Icmpv6Message::EchoReply { .. } => "ICMPv6 echo reply",
                Icmpv6Message::DestinationUnreachable { .. } => "ICMPv6 unreachable",
                Icmpv6Message::RouterSolicitation(_) => "NDP router solicitation",
                Icmpv6Message::RouterAdvertisement(_) => "NDP router advertisement",
                Icmpv6Message::NeighborSolicitation(_) => "NDP neighbor solicitation",
                Icmpv6Message::NeighborAdvertisement(_) => "NDP neighbor advertisement",
            };
            format!("IPv6 [{}] > [{}] {}", ip.src, ip.dst, name)
        }
        (L3::V4(ip), L4::None) => format!("IPv4 {} > {} proto {}", ip.src, ip.dst, ip.protocol),
        (L3::V6(ip), L4::None) => {
            format!("IPv6 [{}] > [{}] nh {}", ip.src, ip.dst, ip.next_header)
        }
        (L3::Other(et, _), _) => format!("ethertype {et:#06x}"),
        _ => "frame".to_string(),
    }
}

#[test]
fn corpus_good_frames_parse_identically() {
    for (name, raw) in GOOD_FRAMES {
        let parsed = differential(raw);
        assert!(parsed.is_some(), "{name}: corpus frame failed to parse");
    }
}

#[test]
fn corpus_bad_frames_fail_identically() {
    for (name, raw) in BAD_FRAMES {
        assert!(
            differential(raw).is_none(),
            "{name}: adversarial corpus frame unexpectedly parsed"
        );
    }
}

#[test]
fn corpus_adversarial_frames_derive_from_their_sources() {
    // Pin the provenance documented in tests/corpus/README.md.
    let (_, discover) = GOOD_FRAMES[0];
    assert_eq!(BAD_FRAMES[0].1, &discover[..31]);
    let (_, dns64) = GOOD_FRAMES[3];
    let mut flipped = dns64.to_vec();
    let n = flipped.len();
    flipped[n - 1] ^= 0xff;
    assert_eq!(BAD_FRAMES[1].1, &flipped[..]);
}

#[test]
fn corpus_reemission_is_byte_identical() {
    for (name, raw) in GOOD_FRAMES {
        let owned = ParsedFrame::parse(raw).unwrap();
        let view = FrameView::parse(raw).unwrap();
        assert_eq!(&reemit(&owned), raw, "{name}: owned re-emission drifted");
        assert_eq!(
            &reemit(&view.to_parsed()),
            raw,
            "{name}: view re-emission drifted"
        );
    }
}

#[test]
fn corpus_truncation_sweep_errors_identically() {
    for (name, raw) in GOOD_FRAMES.iter().chain(BAD_FRAMES) {
        for cut in 0..raw.len() {
            let _ = differential(&raw[..cut]);
            let _ = name;
        }
    }
}

#[test]
fn corpus_corruption_sweep_errors_identically() {
    for (name, raw) in GOOD_FRAMES {
        let mut work = raw.to_vec();
        for i in 0..work.len() {
            work[i] ^= 0xff;
            let _ = differential(&work);
            work[i] ^= 0xff;
            let _ = name;
        }
    }
}

#[test]
fn corpus_checksum_kernels_agree() {
    for (name, raw) in GOOD_FRAMES.iter().chain(BAD_FRAMES) {
        // Whole frame, every prefix, every suffix: exercises all alignments
        // and the scalar tail of the SWAR path.
        for cut in 0..=raw.len() {
            assert_eq!(
                checksum_with(Kernel::Scalar, &raw[..cut]),
                checksum_with(Kernel::Swar, &raw[..cut]),
                "{name}: prefix {cut}"
            );
            assert_eq!(
                checksum_with(Kernel::Scalar, &raw[cut..]),
                checksum_with(Kernel::Swar, &raw[cut..]),
                "{name}: suffix {cut}"
            );
        }
    }
}

#[test]
fn corpus_summaries_match_owned_reference() {
    for (name, raw) in GOOD_FRAMES.iter().chain(BAD_FRAMES) {
        assert_eq!(
            summarize(raw),
            summarize_owned(raw),
            "{name}: summarize drifted from the owned reference"
        );
        // classify agrees with the owned decoders' verdict.
        let owned = ParsedFrame::parse(raw);
        match owned {
            Ok(_) => assert_eq!(classify(raw), "ok", "{name}"),
            Err(e) => {
                let what = match e {
                    v6wire::WireError::Truncated { what, .. } => what,
                    v6wire::WireError::BadField { what, .. } => what,
                    v6wire::WireError::BadChecksum { what, .. } => what,
                    v6wire::WireError::BadLength { what, .. } => what,
                };
                assert_eq!(classify(raw), what, "{name}");
            }
        }
    }
}

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_v4() -> impl Strategy<Value = std::net::Ipv4Addr> {
    any::<u32>().prop_map(std::net::Ipv4Addr::from)
}

fn arb_v6() -> impl Strategy<Value = std::net::Ipv6Addr> {
    any::<u128>().prop_map(std::net::Ipv6Addr::from)
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..128)
}

fn arb_ra_options() -> impl Strategy<Value = Vec<NdpOption>> {
    (
        arb_mac(),
        any::<u128>(),
        any::<u32>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(mac, prefix, lifetime, with_pio, with_rdnss, with_dnssl)| {
                let mut opts = vec![NdpOption::SourceLinkLayer(mac)];
                if with_pio {
                    opts.push(NdpOption::PrefixInformation {
                        prefix_len: 64,
                        on_link: true,
                        autonomous: true,
                        valid_lifetime: lifetime,
                        preferred_lifetime: lifetime / 2,
                        prefix: std::net::Ipv6Addr::from(prefix),
                    });
                }
                if with_rdnss {
                    opts.push(NdpOption::Rdnss {
                        lifetime,
                        servers: vec![std::net::Ipv6Addr::from(prefix ^ 1)],
                    });
                }
                if with_dnssl {
                    opts.push(NdpOption::Dnssl {
                        lifetime,
                        domains: vec!["rfc8925.com".into()],
                    });
                }
                opts
            },
        )
}

/// A valid frame of a random shape, built through the owned builders.
fn arb_frame() -> impl Strategy<Value = Vec<u8>> {
    let udp4 = (
        arb_mac(),
        arb_mac(),
        arb_v4(),
        arb_v4(),
        any::<u16>(),
        any::<u16>(),
        arb_payload(),
    )
        .prop_map(|(sm, dm, s, d, sp, dp, pl)| {
            build_udp_v4(sm, dm, s, d, &UdpDatagram::new(sp, dp, pl))
        });
    let udp6 = (
        arb_mac(),
        arb_mac(),
        arb_v6(),
        arb_v6(),
        any::<u16>(),
        any::<u16>(),
        arb_payload(),
    )
        .prop_map(|(sm, dm, s, d, sp, dp, pl)| {
            build_udp_v6(sm, dm, s, d, &UdpDatagram::new(sp, dp, pl))
        });
    let tcp4 = (
        arb_mac(),
        arb_mac(),
        arb_v4(),
        arb_v4(),
        any::<u16>(),
        any::<u32>(),
        any::<bool>(),
        arb_payload(),
    )
        .prop_map(|(sm, dm, s, d, sp, seq, syn, pl)| {
            let mut seg = TcpSegment::new(
                sp,
                80,
                seq,
                0,
                if syn {
                    TcpFlags::SYN
                } else {
                    TcpFlags::PSH_ACK
                },
            );
            if syn {
                seg.mss = Some(1440);
            }
            seg.payload = pl;
            build_tcp_v4(sm, dm, s, d, &seg)
        });
    let icmp4 = (
        arb_mac(),
        arb_mac(),
        arb_v4(),
        arb_v4(),
        any::<u16>(),
        arb_payload(),
    )
        .prop_map(|(sm, dm, s, d, ident, pl)| {
            build_icmpv4(
                sm,
                dm,
                s,
                d,
                &Icmpv4Message::EchoRequest {
                    ident,
                    seq: 1,
                    payload: pl,
                },
            )
        });
    let icmp6 = (
        arb_mac(),
        arb_mac(),
        arb_v6(),
        arb_v6(),
        any::<u16>(),
        arb_payload(),
    )
        .prop_map(|(sm, dm, s, d, ident, pl)| {
            build_icmpv6(
                sm,
                dm,
                s,
                d,
                &Icmpv6Message::EchoRequest {
                    ident,
                    seq: 1,
                    payload: pl,
                },
            )
        });
    let ra = (
        arb_mac(),
        arb_v6(),
        any::<u16>(),
        any::<bool>(),
        arb_ra_options(),
    )
        .prop_map(|(sm, src, lifetime, low, opts)| {
            let mut ra = RouterAdvertisement::new(lifetime);
            if low {
                ra.preference = RouterPreference::Low;
            }
            ra.options = opts;
            build_icmpv6(
                sm,
                MacAddr::for_ipv6_multicast(all_nodes()),
                src,
                all_nodes(),
                &Icmpv6Message::RouterAdvertisement(ra),
            )
        });
    let arp = (arb_mac(), arb_v4(), arb_v4()).prop_map(|(sm, sip, tip)| {
        build_arp(sm, MacAddr::BROADCAST, &ArpPacket::request(sm, sip, tip))
    });
    prop_oneof![udp4, udp6, tcp4, icmp4, icmp6, ra, arp]
}

proptest! {
    #[test]
    fn generated_frames_parse_identically_and_reemit(raw in arb_frame()) {
        let parsed = differential(&raw).expect("generated frame must parse");
        prop_assert_eq!(&reemit(&parsed), &raw);
        prop_assert_eq!(summarize(&raw), summarize_owned(&raw));
    }

    #[test]
    fn generated_frames_truncate_identically(raw in arb_frame(), cut in any::<prop::sample::Index>()) {
        let at = cut.index(raw.len());
        let _ = differential(&raw[..at]);
        prop_assert_eq!(summarize(&raw[..at]), summarize_owned(&raw[..at]));
    }

    #[test]
    fn generated_frames_corrupt_identically(raw in arb_frame(), at in any::<prop::sample::Index>(), flip in 1u8..) {
        let mut work = raw;
        let i = at.index(work.len());
        work[i] ^= flip;
        let _ = differential(&work);
        prop_assert_eq!(summarize(&work), summarize_owned(&work));
    }

    #[test]
    fn random_bytes_never_panic_and_agree(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = differential(&raw);
        prop_assert_eq!(summarize(&raw), summarize_owned(&raw));
    }

    #[test]
    fn checksum_kernels_agree_on_random_slices(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        prop_assert_eq!(
            checksum_with(Kernel::Scalar, &data),
            checksum_with(Kernel::Swar, &data)
        );
    }
}
