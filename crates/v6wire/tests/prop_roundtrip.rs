//! Property-based tests: every codec must round-trip arbitrary packets, and
//! every checksum must bind the data and pseudo-header.

use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};
use v6wire::arp::ArpPacket;
use v6wire::checksum::{checksum, incremental_update, pseudo_v4, pseudo_v6, Checksum};
use v6wire::ethernet::{EtherType, EthernetFrame};
use v6wire::icmpv4::Icmpv4Message;
use v6wire::icmpv6::Icmpv6Message;
use v6wire::ipv4::{proto, Ipv4Packet};
use v6wire::ipv6::Ipv6Packet;
use v6wire::mac::MacAddr;
use v6wire::tcp::{TcpFlags, TcpSegment};
use v6wire::udp::UdpDatagram;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_v4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_v6() -> impl Strategy<Value = Ipv6Addr> {
    any::<u128>().prop_map(Ipv6Addr::from)
}

proptest! {
    #[test]
    fn checksum_split_invariant(data in proptest::collection::vec(any::<u8>(), 0..512), split in any::<prop::sample::Index>()) {
        let at = if data.is_empty() { 0 } else { split.index(data.len()) };
        let mut c = Checksum::new();
        c.push(&data[..at]);
        c.push(&data[at..]);
        prop_assert_eq!(c.finish(), checksum(&data));
    }

    #[test]
    fn checksum_self_verifies(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Appending the correct checksum makes the whole verify to zero —
        // but only for even-length data (the trailing odd byte pads
        // differently once the checksum bytes follow it).
        let mut data = data;
        if data.len() % 2 == 1 { data.push(0); }
        let ck = checksum(&data);
        let mut with = data.clone();
        with.extend_from_slice(&ck.to_be_bytes());
        prop_assert_eq!(checksum(&with), 0);
    }

    #[test]
    fn incremental_update_matches_recompute(
        mut data in proptest::collection::vec(any::<u8>(), 4..128),
        word in any::<u16>(),
        idx in any::<prop::sample::Index>()
    ) {
        if data.len() % 2 == 1 { data.push(0); }
        let pos = idx.index(data.len() / 2) * 2;
        let old = u16::from_be_bytes([data[pos], data[pos + 1]]);
        let before = checksum(&data);
        let updated = incremental_update(before, old, word);
        data[pos..pos + 2].copy_from_slice(&word.to_be_bytes());
        prop_assert_eq!(updated, checksum(&data));
    }

    #[test]
    fn ethernet_roundtrip(dst in arb_mac(), src in arb_mac(), et in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let f = EthernetFrame::new(dst, src, EtherType::from_u16(et), payload);
        prop_assert_eq!(EthernetFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn arp_roundtrip(smac in arb_mac(), sip in arb_v4(), tmac in arb_mac(), tip in arb_v4(), is_req in any::<bool>()) {
        let p = ArpPacket {
            op: if is_req { v6wire::arp::ArpOp::Request } else { v6wire::arp::ArpOp::Reply },
            sender_mac: smac,
            sender_ip: sip,
            target_mac: tmac,
            target_ip: tip,
        };
        prop_assert_eq!(ArpPacket::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn ipv4_roundtrip(src in arb_v4(), dst in arb_v4(), protocol in any::<u8>(), ttl in 1u8.., dscp in any::<u8>(), df in any::<bool>(), ident in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut p = Ipv4Packet::new(src, dst, protocol, payload);
        p.ttl = ttl;
        p.dscp_ecn = dscp;
        p.dont_fragment = df;
        p.identification = ident;
        prop_assert_eq!(Ipv4Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn ipv4_corruption_detected(src in arb_v4(), dst in arb_v4(), byte in 0usize..20, bit in 0u8..8) {
        let p = Ipv4Packet::new(src, dst, proto::UDP, vec![1, 2, 3]);
        let mut bytes = p.encode();
        bytes[byte] ^= 1 << bit;
        // Any single-bit header corruption is either detected or changes a
        // field covered by checksum — decode must not return the original
        // unchanged packet with a valid checksum unless the flip undid
        // itself (impossible for a single bit).
        if let Ok(q) = Ipv4Packet::decode(&bytes) { prop_assert_ne!(q, p) }
    }

    #[test]
    fn ipv6_roundtrip(src in arb_v6(), dst in arb_v6(), nh in any::<u8>(), hl in 1u8.., tc in any::<u8>(), fl in 0u32..0x100000, payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut p = Ipv6Packet::new(src, dst, nh, payload);
        p.hop_limit = hl;
        p.traffic_class = tc;
        p.flow_label = fl;
        prop_assert_eq!(Ipv6Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn udp_roundtrip_both_families(sp in any::<u16>(), dp in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..512), s4 in arb_v4(), d4 in arb_v4(), s6 in arb_v6(), d6 in arb_v6()) {
        let d = UdpDatagram::new(sp, dp, payload);
        let b4 = d.encode_v4(s4, d4);
        prop_assert_eq!(UdpDatagram::decode_v4(&b4, s4, d4).unwrap(), d.clone());
        let b6 = d.encode_v6(s6, d6);
        prop_assert_eq!(UdpDatagram::decode_v6(&b6, s6, d6).unwrap(), d);
    }

    #[test]
    fn udp_v6_rejects_any_flip(payload in proptest::collection::vec(any::<u8>(), 1..64), s6 in arb_v6(), d6 in arb_v6(), idx in any::<prop::sample::Index>(), bit in 0u8..8) {
        let d = UdpDatagram::new(1000, 53, payload);
        let mut bytes = d.encode_v6(s6, d6);
        let at = idx.index(bytes.len());
        // Skip flips in the length field, which change framing rather than
        // content (caught as BadLength, also an error).
        bytes[at] ^= 1 << bit;
        prop_assert!(UdpDatagram::decode_v6(&bytes, s6, d6).is_err());
    }

    #[test]
    fn tcp_roundtrip(sp in any::<u16>(), dp in any::<u16>(), seq in any::<u32>(), ack in any::<u32>(), window in any::<u16>(), mss in proptest::option::of(any::<u16>()), payload in proptest::collection::vec(any::<u8>(), 0..256), s6 in arb_v6(), d6 in arb_v6()) {
        let mut seg = TcpSegment::new(sp, dp, seq, ack, TcpFlags::PSH_ACK);
        seg.window = window;
        seg.mss = mss;
        seg.payload = payload;
        let bytes = seg.encode_v6(s6, d6);
        prop_assert_eq!(TcpSegment::decode_v6(&bytes, s6, d6).unwrap(), seg);
    }

    #[test]
    fn icmpv4_echo_roundtrip(ident in any::<u16>(), seqn in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let m = Icmpv4Message::EchoRequest { ident, seq: seqn, payload };
        prop_assert_eq!(Icmpv4Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn icmpv6_echo_roundtrip(ident in any::<u16>(), seqn in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..128), s6 in arb_v6(), d6 in arb_v6()) {
        let m = Icmpv6Message::EchoReply { ident, seq: seqn, payload };
        let bytes = m.encode(s6, d6);
        prop_assert_eq!(Icmpv6Message::decode(&bytes, s6, d6).unwrap(), m);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Fuzz the whole layered parser: errors are fine, panics are not.
        let _ = v6wire::packet::ParsedFrame::parse(&bytes);
        let _ = Ipv4Packet::decode(&bytes);
        let _ = Ipv6Packet::decode(&bytes);
        let _ = ArpPacket::decode(&bytes);
        let _ = Icmpv4Message::decode(&bytes);
    }
}

// --- RFC 1624 incremental updates under NAT rewrites -----------------------
//
// The stateless translators rewrite addresses/ports and fix transport
// checksums incrementally instead of re-summing the payload. These
// properties pin the incremental chain to a full recompute for both the
// NAT44 shape (address + port rewrite within IPv4) and the NAT64 shape
// (whole pseudo-header swapped between families).
//
// Ones-complement has two zeros, so a chain of eqn-3 updates may land on
// 0x0000 where a full recompute lands on 0xffff (or vice versa); UDP
// transmits 0 as 0xffff for exactly this reason, so compare normalized.

fn norm_udp_ck(ck: u16) -> u16 {
    if ck == 0 {
        0xffff
    } else {
        ck
    }
}

fn v4_words(a: Ipv4Addr) -> [u16; 2] {
    let o = a.octets();
    [
        u16::from_be_bytes([o[0], o[1]]),
        u16::from_be_bytes([o[2], o[3]]),
    ]
}

/// Full UDP checksum over the IPv4 pseudo-header + header + payload.
fn udp_ck_v4(src: Ipv4Addr, dst: Ipv4Addr, sp: u16, dp: u16, payload: &[u8]) -> u16 {
    let len = 8 + payload.len() as u16;
    let mut c = pseudo_v4(src, dst, proto::UDP, len);
    c.push_u16(sp);
    c.push_u16(dp);
    c.push_u16(len);
    c.push_u16(0);
    c.push(payload);
    c.finish()
}

/// Full UDP checksum over the IPv6 pseudo-header + header + payload.
fn udp_ck_v6(src: Ipv6Addr, dst: Ipv6Addr, sp: u16, dp: u16, payload: &[u8]) -> u16 {
    let len = 8 + payload.len() as u16;
    let mut c = pseudo_v6(src, dst, proto::UDP, u32::from(len));
    c.push_u16(sp);
    c.push_u16(dp);
    c.push_u16(len);
    c.push_u16(0);
    c.push(payload);
    c.finish()
}

proptest! {
    #[test]
    fn nat44_incremental_update_matches_recompute(
        src in arb_v4(), dst in arb_v4(), new_src in arb_v4(),
        sp in any::<u16>(), dp in any::<u16>(), new_sp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        let old_ck = udp_ck_v4(src, dst, sp, dp, &payload);
        // NAT44 source rewrite: two address words + the source port.
        let mut ck = old_ck;
        let [oh, ol] = v4_words(src);
        let [nh, nl] = v4_words(new_src);
        ck = incremental_update(ck, oh, nh);
        ck = incremental_update(ck, ol, nl);
        ck = incremental_update(ck, sp, new_sp);
        let full = udp_ck_v4(new_src, dst, new_sp, dp, &payload);
        prop_assert_eq!(norm_udp_ck(ck), norm_udp_ck(full));
    }

    #[test]
    fn nat64_incremental_update_matches_recompute(
        src6 in arb_v6(), dst6 in arb_v6(),
        src4 in arb_v4(), dst4 in arb_v4(),
        sp in any::<u16>(), dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        let len = 8 + payload.len() as u16;
        // Word streams of both pseudo-headers, zero-padded to equal length:
        // updating (old_word -> new_word) pairwise is exactly the NAT64
        // translator's checksum fixup (RFC 7915 §4.5 strategy).
        let mut old_words = Vec::new();
        old_words.extend_from_slice(&src6.segments());
        old_words.extend_from_slice(&dst6.segments());
        old_words.extend_from_slice(&[0, len, 0, u16::from(proto::UDP)]);
        let mut new_words = Vec::new();
        new_words.extend_from_slice(&v4_words(src4));
        new_words.extend_from_slice(&v4_words(dst4));
        new_words.extend_from_slice(&[u16::from(proto::UDP), len]);
        new_words.resize(old_words.len(), 0);

        let old_ck = udp_ck_v6(src6, dst6, sp, dp, &payload);
        let mut ck = old_ck;
        for (&o, &n) in old_words.iter().zip(&new_words) {
            ck = incremental_update(ck, o, n);
        }
        let full4 = udp_ck_v4(src4, dst4, sp, dp, &payload);
        prop_assert_eq!(norm_udp_ck(ck), norm_udp_ck(full4));

        // And the reverse direction (IPv4 -> IPv6, the return path) gets
        // back to the original checksum.
        let mut back = full4;
        for (&o, &n) in new_words.iter().zip(&old_words) {
            back = incremental_update(back, o, n);
        }
        prop_assert_eq!(norm_udp_ck(back), norm_udp_ck(old_ck));
    }
}
