//! CLAT — the customer-side translator of 464XLAT (RFC 6877).
//!
//! When an RFC 8925 client disables IPv4, applications that use IPv4
//! literals (the paper's Echolink example, Fig. 2) still open IPv4 sockets.
//! The OS gives them a private IPv4 address (RFC 7335 reserves
//! `192.0.0.0/29`; hosts use `192.0.0.1`) and the CLAT statelessly
//! translates every such packet to IPv6:
//!
//! * source: the client's dedicated CLAT IPv6 address (derived from its
//!   /64 in real deployments),
//! * destination: `PLAT prefix ⊕ v4 destination` (RFC 6052) so the
//!   provider-side NAT64 (the PLAT) completes the path.

use crate::siit::{self, PortRewrite, XlatError};
use std::net::{Ipv4Addr, Ipv6Addr};
use v6addr::rfc6052::Nat64Prefix;
use v6wire::ipv4::Ipv4Packet;
use v6wire::ipv6::Ipv6Packet;

/// A per-host CLAT instance.
#[derive(Debug, Clone)]
pub struct Clat {
    /// The host's internal IPv4 address handed to v4-only applications
    /// (RFC 7335: 192.0.0.1).
    pub host_v4: Ipv4Addr,
    /// The host's CLAT-dedicated IPv6 source address.
    pub clat_v6: Ipv6Addr,
    /// The PLAT-side translation prefix (discovered via DNS64 heuristics or
    /// RA PREF64 in real deployments; configured directly here).
    pub plat_prefix: Nat64Prefix,
}

impl Clat {
    /// Standard CLAT: 192.0.0.1 internal, given v6 source and PLAT prefix.
    pub fn new(clat_v6: Ipv6Addr, plat_prefix: Nat64Prefix) -> Clat {
        Clat {
            host_v4: Ipv4Addr::new(192, 0, 0, 1),
            clat_v6,
            plat_prefix,
        }
    }

    /// Translate an application's outbound IPv4 packet to IPv6 (stateless;
    /// ports untouched).
    pub fn v4_out(&self, pkt: &Ipv4Packet) -> Result<Ipv6Packet, XlatError> {
        let dst6 = self.plat_prefix.embed_unchecked(pkt.dst);
        siit::v4_to_v6(pkt, self.clat_v6, dst6, PortRewrite::default())
    }

    /// Translate an inbound IPv6 packet (from the PLAT) back to IPv4 for the
    /// local application.
    pub fn v6_in(&self, pkt: &Ipv6Packet) -> Result<Ipv4Packet, XlatError> {
        if pkt.dst != self.clat_v6 {
            return Err(XlatError::NotInPrefix(pkt.dst));
        }
        let src4 = self
            .plat_prefix
            .extract(pkt.src)
            .map_err(|_| XlatError::NotInPrefix(pkt.src))?;
        siit::v6_to_v4(pkt, src4, self.host_v4, PortRewrite::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat64::Nat64;
    use v6wire::ipv4::proto;
    use v6wire::udp::UdpDatagram;

    fn clat() -> Clat {
        Clat::new(
            "2607:fb90:9bda:a425::c1a7".parse().unwrap(),
            Nat64Prefix::well_known(),
        )
    }

    /// Echolink-style traffic: an app sends UDP to an IPv4 literal.
    #[test]
    fn v4_literal_app_traffic_translates_out() {
        let c = clat();
        let d = UdpDatagram::new(5198, 5198, b"RTP audio".to_vec());
        let pkt = Ipv4Packet::new(
            c.host_v4,
            "44.12.7.9".parse().unwrap(), // IPv4 literal from the app
            proto::UDP,
            d.encode_v4(c.host_v4, "44.12.7.9".parse().unwrap()),
        );
        let out = c.v4_out(&pkt).unwrap();
        assert_eq!(out.src, c.clat_v6);
        assert_eq!(out.dst, "64:ff9b::2c0c:709".parse::<Ipv6Addr>().unwrap());
        let od = UdpDatagram::decode_v6(&out.payload, out.src, out.dst).unwrap();
        assert_eq!(od, d);
    }

    #[test]
    fn inbound_restores_v4_view() {
        let c = clat();
        let d = UdpDatagram::new(5198, 5198, b"reply".to_vec());
        let src6 = Nat64Prefix::well_known().embed_unchecked("44.12.7.9".parse().unwrap());
        let pkt = Ipv6Packet::new(src6, c.clat_v6, proto::UDP, d.encode_v6(src6, c.clat_v6));
        let back = c.v6_in(&pkt).unwrap();
        assert_eq!(back.src, "44.12.7.9".parse::<Ipv4Addr>().unwrap());
        assert_eq!(back.dst, c.host_v4);
    }

    #[test]
    fn inbound_to_wrong_address_rejected() {
        let c = clat();
        let d = UdpDatagram::new(1, 2, vec![]);
        let src6: Ipv6Addr = "64:ff9b::1.2.3.4".parse().unwrap();
        let other: Ipv6Addr = "2607:fb90:9bda:a425::beef".parse().unwrap();
        let pkt = Ipv6Packet::new(src6, other, proto::UDP, d.encode_v6(src6, other));
        assert!(c.v6_in(&pkt).is_err());
    }

    /// The full 464XLAT path: app v4 → CLAT → (v6 network) → PLAT/NAT64 →
    /// v4 internet and back. This is the complete plumbing that makes
    /// RFC 8925 clients transparent to v4-literal applications.
    #[test]
    fn full_464xlat_path() {
        let c = clat();
        let mut plat = Nat64::well_known_on(vec!["203.0.113.64".parse().unwrap()]);
        let server: Ipv4Addr = "44.12.7.9".parse().unwrap();

        // Outbound app packet.
        let d = UdpDatagram::new(5198, 5198, b"hello repeater".to_vec());
        let app = Ipv4Packet::new(
            c.host_v4,
            server,
            proto::UDP,
            d.encode_v4(c.host_v4, server),
        );
        let on_wire_v6 = c.v4_out(&app).unwrap();
        let at_server = plat.v6_to_v4(&on_wire_v6, 100).unwrap();
        assert_eq!(at_server.dst, server);
        let sd = UdpDatagram::decode_v4(&at_server.payload, at_server.src, at_server.dst).unwrap();
        assert_eq!(sd.payload, b"hello repeater");

        // Server reply retraces the path.
        let reply = UdpDatagram::new(5198, sd.src_port, b"audio".to_vec());
        let rpkt = Ipv4Packet::new(
            server,
            at_server.src,
            proto::UDP,
            reply.encode_v4(server, at_server.src),
        );
        let back_v6 = plat.v4_to_v6(&rpkt, 101).unwrap();
        let back_v4 = c.v6_in(&back_v6).unwrap();
        assert_eq!(back_v4.src, server);
        assert_eq!(back_v4.dst, c.host_v4);
        let rd = UdpDatagram::decode_v4(&back_v4.payload, back_v4.src, back_v4.dst).unwrap();
        assert_eq!(rd.dst_port, 5198);
        assert_eq!(rd.payload, b"audio");
    }

    #[test]
    fn custom_plat_prefix() {
        let c = Clat::new(
            "2001:db8:aaaa::c1a7".parse().unwrap(),
            Nat64Prefix::new("2001:db8:64::/96".parse().unwrap()).unwrap(),
        );
        let d = UdpDatagram::new(1000, 2000, vec![7]);
        let dst: Ipv4Addr = "198.51.100.1".parse().unwrap();
        let pkt = Ipv4Packet::new(c.host_v4, dst, proto::UDP, d.encode_v4(c.host_v4, dst));
        let out = c.v4_out(&pkt).unwrap();
        assert_eq!(
            out.dst,
            "2001:db8:64::c633:6401".parse::<Ipv6Addr>().unwrap()
        );
    }
}
