//! # v6xlat — IP/ICMP translation for the sc24v6 testbed
//!
//! The three translation mechanisms the paper's testbed stacks together:
//!
//! * **SIIT** stateless IP/ICMP header translation (RFC 7915, successor of
//!   the RFC 6145 algorithm the paper cites) — [`siit`]
//! * **Stateful NAT64** (RFC 6146): BIBs, sessions, port allocation and
//!   lifetimes, using the RFC 6052 prefix from `v6addr` — [`nat64`]
//! * **CLAT** (RFC 6877 / 464XLAT customer-side translator): the component
//!   RFC 8925 clients activate so IPv4-literal applications keep working on
//!   an IPv6-only network — [`clat`]

#![warn(missing_docs)]

pub mod clat;
pub mod nat64;
pub mod siit;

pub use clat::Clat;
pub use nat64::{Nat64, Nat64Config};
pub use siit::XlatError;
