//! Stateful NAT64 (RFC 6146).
//!
//! IPv6 clients address translated flows at `prefix ⊕ v4-destination`
//! (RFC 6052). Outbound packets allocate an entry in the per-protocol
//! Binding Information Base (BIB) mapping `(v6 source, source port)` to
//! `(pool address, allocated port)`; inbound packets are admitted only when
//! a binding exists (endpoint-independent mapping, address-dependent
//! filtering kept simple: binding presence is the filter).
//!
//! The testbed's NAT64 ran on the 5G gateway with the well-known prefix
//! (paper §IV.A): `Nat64::well_known_on(pool)` builds exactly that.

use crate::siit::{self, PortRewrite, XlatError};
use std::net::{Ipv4Addr, Ipv6Addr};
use v6addr::rfc6052::Nat64Prefix;
use v6wire::fasthash::FastMap;
use v6wire::icmpv6::Icmpv6Message;
use v6wire::ipv4::{proto, Ipv4Packet};
use v6wire::ipv6::Ipv6Packet;
use v6wire::tcp::TcpSegment;
use v6wire::udp::UdpDatagram;

/// Session lifetimes (RFC 6146 §4 defaults, seconds).
#[derive(Debug, Clone, Copy)]
pub struct Nat64Config {
    /// UDP session lifetime (§4: ≥ 2 min; default 5 min).
    pub udp_lifetime: u64,
    /// Established TCP session lifetime (§4: ≥ 2 h 4 min).
    pub tcp_est_lifetime: u64,
    /// Transitory TCP (SYN/FIN/RST) session lifetime.
    pub tcp_trans_lifetime: u64,
    /// ICMP query session lifetime (§4: 60 s).
    pub icmp_lifetime: u64,
    /// First port allocated from each pool address.
    pub port_floor: u16,
    /// Cap on live bindings across all protocols (`None` = unlimited).
    /// Models translation-table exhaustion on a shared carrier NAT64:
    /// new flows are refused while existing bindings keep refreshing.
    pub max_bindings: Option<usize>,
}

impl Default for Nat64Config {
    fn default() -> Self {
        Nat64Config {
            udp_lifetime: 300,
            tcp_est_lifetime: 7440,
            tcp_trans_lifetime: 240,
            icmp_lifetime: 60,
            port_floor: 1024,
            max_bindings: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Proto {
    Udp,
    Tcp,
    Icmp,
}

#[derive(Debug, Clone, Copy)]
struct Binding {
    external: (Ipv4Addr, u16),
    expires: u64,
}

/// One protocol's BIB + reverse index.
#[derive(Debug, Default)]
struct Bib {
    forward: FastMap<(Ipv6Addr, u16), Binding>,
    reverse: FastMap<(Ipv4Addr, u16), (Ipv6Addr, u16)>,
    next_port: u16,
}

/// A stateful NAT64 translator.
#[derive(Debug)]
pub struct Nat64 {
    prefix: Nat64Prefix,
    pool: Vec<Ipv4Addr>,
    config: Nat64Config,
    udp: Bib,
    tcp: Bib,
    icmp: Bib,
    /// Packets translated v6→v4.
    pub outbound: u64,
    /// Packets translated v4→v6.
    pub inbound: u64,
    /// Inbound packets dropped for want of a binding.
    pub dropped_no_binding: u64,
    /// Outbound packets refused because the session table hit
    /// [`Nat64Config::max_bindings`].
    pub dropped_table_full: u64,
}

impl Nat64 {
    /// Build with an explicit prefix and v4 pool.
    pub fn new(prefix: Nat64Prefix, pool: Vec<Ipv4Addr>, config: Nat64Config) -> Nat64 {
        let floor = config.port_floor;
        let mk = || Bib {
            next_port: floor,
            ..Default::default()
        };
        Nat64 {
            prefix,
            pool,
            config,
            udp: mk(),
            tcp: mk(),
            icmp: mk(),
            outbound: 0,
            inbound: 0,
            dropped_no_binding: 0,
            dropped_table_full: 0,
        }
    }

    /// The testbed's configuration: well-known prefix, given pool.
    pub fn well_known_on(pool: Vec<Ipv4Addr>) -> Nat64 {
        Nat64::new(Nat64Prefix::well_known(), pool, Nat64Config::default())
    }

    /// The translation prefix.
    pub fn prefix(&self) -> Nat64Prefix {
        self.prefix
    }

    /// (Re)configure the live-binding cap; `None` lifts it.
    pub fn set_max_bindings(&mut self, cap: Option<usize>) {
        self.config.max_bindings = cap;
    }

    /// Restore the post-construction state: every protocol's BIB
    /// flushed, port allocators rewound to the configured floor, the
    /// binding cap lifted (callers re-apply a per-cell cap exactly as a
    /// cold build would), and all counters zeroed.
    pub fn reset(&mut self) {
        for bib in [&mut self.udp, &mut self.tcp, &mut self.icmp] {
            bib.forward.clear();
            bib.reverse.clear();
            bib.next_port = self.config.port_floor;
        }
        self.config.max_bindings = None;
        self.outbound = 0;
        self.inbound = 0;
        self.dropped_no_binding = 0;
        self.dropped_table_full = 0;
    }

    /// Number of live bindings across protocols.
    pub fn live_bindings(&self, now: u64) -> usize {
        [&self.udp, &self.tcp, &self.icmp]
            .iter()
            .map(|b| b.forward.values().filter(|e| e.expires > now).count())
            .sum()
    }

    /// Counter snapshot (`outbound`, `inbound`, `dropped_no_binding`) in
    /// the shared [`v6wire::metrics::Metrics`] form.
    pub fn metrics(&self) -> v6wire::metrics::Metrics {
        [
            ("outbound", self.outbound),
            ("inbound", self.inbound),
            ("dropped_no_binding", self.dropped_no_binding),
            ("dropped_table_full", self.dropped_table_full),
        ]
        .into_iter()
        .collect()
    }

    /// Drop expired bindings.
    pub fn expire(&mut self, now: u64) {
        for bib in [&mut self.udp, &mut self.tcp, &mut self.icmp] {
            let dead: Vec<(Ipv6Addr, u16)> = bib
                .forward
                .iter()
                .filter(|(_, e)| e.expires <= now)
                .map(|(k, _)| *k)
                .collect();
            for k in dead {
                if let Some(e) = bib.forward.remove(&k) {
                    bib.reverse.remove(&e.external);
                }
            }
        }
    }

    fn lifetime(&self, p: Proto, tcp_established: bool) -> u64 {
        match p {
            Proto::Udp => self.config.udp_lifetime,
            Proto::Icmp => self.config.icmp_lifetime,
            Proto::Tcp if tcp_established => self.config.tcp_est_lifetime,
            Proto::Tcp => self.config.tcp_trans_lifetime,
        }
    }

    fn bib(&mut self, p: Proto) -> &mut Bib {
        match p {
            Proto::Udp => &mut self.udp,
            Proto::Tcp => &mut self.tcp,
            Proto::Icmp => &mut self.icmp,
        }
    }

    /// Allocate (or refresh) the binding for `(src, src_port)`.
    fn bind(
        &mut self,
        p: Proto,
        src: Ipv6Addr,
        src_port: u16,
        now: u64,
        tcp_established: bool,
    ) -> Result<(Ipv4Addr, u16), XlatError> {
        let lifetime = self.lifetime(p, tcp_established);
        let pool = self.pool.clone();
        if let Some(e) = self.bib(p).forward.get_mut(&(src, src_port)) {
            e.expires = now + lifetime;
            return Ok(e.external);
        }
        // Only brand-new bindings are subject to the table cap; refreshes
        // above always succeed (RFC 6146 keeps live sessions alive).
        if let Some(cap) = self.config.max_bindings {
            if self.live_bindings(now) >= cap {
                self.dropped_table_full += 1;
                return Err(XlatError::TableFull);
            }
        }
        let bib = self.bib(p);
        // Scan for a free (addr, port) pair starting at next_port.
        let span = usize::from(u16::MAX - 1024) * pool.len();
        for _ in 0..span {
            let port = bib.next_port;
            bib.next_port = if bib.next_port == u16::MAX {
                1024
            } else {
                bib.next_port + 1
            };
            for &addr in &pool {
                let key = (addr, port);
                let free = match bib.reverse.get(&key) {
                    None => true,
                    Some(holder) => bib
                        .forward
                        .get(holder)
                        .map(|e| e.expires <= now)
                        .unwrap_or(true),
                };
                if free {
                    bib.reverse.insert(key, (src, src_port));
                    bib.forward.insert(
                        (src, src_port),
                        Binding {
                            external: key,
                            expires: now + lifetime,
                        },
                    );
                    return Ok(key);
                }
            }
        }
        Err(XlatError::PoolExhausted)
    }

    /// Translate an outbound (IPv6 → IPv4) packet.
    pub fn v6_to_v4(&mut self, pkt: &Ipv6Packet, now: u64) -> Result<Ipv4Packet, XlatError> {
        let dst_v4 = self
            .prefix
            .extract(pkt.dst)
            .map_err(|_| XlatError::NotInPrefix(pkt.dst))?;
        let (p, src_port, tcp_established) = flow_v6(pkt)?;
        let (ext_addr, ext_port) = self.bind(p, pkt.src, src_port, now, tcp_established)?;
        let out = siit::v6_to_v4(
            pkt,
            ext_addr,
            dst_v4,
            PortRewrite {
                src: Some(ext_port),
                dst: None,
            },
        )?;
        self.outbound += 1;
        Ok(out)
    }

    /// Translate an inbound (IPv4 → IPv6) packet; requires a binding.
    pub fn v4_to_v6(&mut self, pkt: &Ipv4Packet, now: u64) -> Result<Ipv6Packet, XlatError> {
        let (p, dst_port) = flow_v4(pkt)?;
        let bib = self.bib(p);
        let Some(&(int_addr, int_port)) = bib.reverse.get(&(pkt.dst, dst_port)) else {
            self.dropped_no_binding += 1;
            return Err(XlatError::NoBinding);
        };
        let live = bib
            .forward
            .get(&(int_addr, int_port))
            .map(|e| e.expires > now)
            .unwrap_or(false);
        if !live {
            self.dropped_no_binding += 1;
            return Err(XlatError::NoBinding);
        }
        let new_src = self.prefix.embed_unchecked(pkt.src);
        let out = siit::v4_to_v6(
            pkt,
            new_src,
            int_addr,
            PortRewrite {
                src: None,
                dst: Some(int_port),
            },
        )?;
        self.inbound += 1;
        Ok(out)
    }
}

/// Extract (protocol, source port / ident, tcp-established?) from a v6 packet.
fn flow_v6(pkt: &Ipv6Packet) -> Result<(Proto, u16, bool), XlatError> {
    match pkt.next_header {
        proto::UDP => {
            let d = UdpDatagram::decode_v6(&pkt.payload, pkt.src, pkt.dst)?;
            Ok((Proto::Udp, d.src_port, false))
        }
        proto::TCP => {
            let s = TcpSegment::decode_v6(&pkt.payload, pkt.src, pkt.dst)?;
            // A bare ACK (no SYN/FIN/RST) marks the session established.
            let est = s.flags.ack && !s.flags.syn && !s.flags.fin && !s.flags.rst;
            Ok((Proto::Tcp, s.src_port, est))
        }
        proto::ICMPV6 => {
            let m = Icmpv6Message::decode(&pkt.payload, pkt.src, pkt.dst)?;
            match m {
                Icmpv6Message::EchoRequest { ident, .. }
                | Icmpv6Message::EchoReply { ident, .. } => Ok((Proto::Icmp, ident, false)),
                _ => Err(XlatError::UntranslatableIcmp),
            }
        }
        other => Err(XlatError::UnsupportedProtocol(other)),
    }
}

/// Extract (protocol, destination port / ident) from a v4 packet.
fn flow_v4(pkt: &Ipv4Packet) -> Result<(Proto, u16), XlatError> {
    match pkt.protocol {
        proto::UDP => {
            let d = UdpDatagram::decode_v4(&pkt.payload, pkt.src, pkt.dst)?;
            Ok((Proto::Udp, d.dst_port))
        }
        proto::TCP => {
            let s = TcpSegment::decode_v4(&pkt.payload, pkt.src, pkt.dst)?;
            Ok((Proto::Tcp, s.dst_port))
        }
        proto::ICMP => {
            let m = v6wire::icmpv4::Icmpv4Message::decode(&pkt.payload)?;
            match m {
                v6wire::icmpv4::Icmpv4Message::EchoRequest { ident, .. }
                | v6wire::icmpv4::Icmpv4Message::EchoReply { ident, .. } => {
                    Ok((Proto::Icmp, ident))
                }
                _ => Err(XlatError::UntranslatableIcmp),
            }
        }
        other => Err(XlatError::UnsupportedProtocol(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6wire::tcp::TcpFlags;

    const CLIENT: &str = "2607:fb90:9bda:a425::50";
    const SERVER4: &str = "190.92.158.4";

    fn a4(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn a6(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn nat() -> Nat64 {
        Nat64::well_known_on(vec![a4("203.0.113.64"), a4("203.0.113.65")])
    }

    fn udp_v6(src_port: u16, dst4: Ipv4Addr, payload: &[u8]) -> Ipv6Packet {
        let dst = Nat64Prefix::well_known().embed_unchecked(dst4);
        let d = UdpDatagram::new(src_port, 53, payload.to_vec());
        Ipv6Packet::new(a6(CLIENT), dst, proto::UDP, d.encode_v6(a6(CLIENT), dst))
    }

    #[test]
    fn udp_round_trip_through_nat() {
        let mut n = nat();
        let out = n.v6_to_v4(&udp_v6(40000, a4(SERVER4), b"q"), 100).unwrap();
        assert_eq!(out.dst, a4(SERVER4));
        assert!(n.pool.contains(&out.src));
        let od = UdpDatagram::decode_v4(&out.payload, out.src, out.dst).unwrap();
        assert_eq!(od.dst_port, 53);
        // Server replies to the external tuple.
        let reply = UdpDatagram::new(53, od.src_port, b"r".to_vec());
        let rpkt = Ipv4Packet::new(
            a4(SERVER4),
            out.src,
            proto::UDP,
            reply.encode_v4(a4(SERVER4), out.src),
        );
        let back = n.v4_to_v6(&rpkt, 101).unwrap();
        assert_eq!(back.dst, a6(CLIENT));
        assert_eq!(
            back.src,
            Nat64Prefix::well_known().embed_unchecked(a4(SERVER4))
        );
        let bd = UdpDatagram::decode_v6(&back.payload, back.src, back.dst).unwrap();
        assert_eq!(bd.dst_port, 40000, "internal port restored");
        assert_eq!((n.outbound, n.inbound), (1, 1));
    }

    #[test]
    fn binding_reused_for_same_flow() {
        let mut n = nat();
        let o1 = n.v6_to_v4(&udp_v6(40000, a4(SERVER4), b"1"), 0).unwrap();
        let o2 = n.v6_to_v4(&udp_v6(40000, a4("8.8.8.8"), b"2"), 1).unwrap();
        let p1 = UdpDatagram::decode_v4(&o1.payload, o1.src, o1.dst)
            .unwrap()
            .src_port;
        let p2 = UdpDatagram::decode_v4(&o2.payload, o2.src, o2.dst)
            .unwrap()
            .src_port;
        assert_eq!((o1.src, p1), (o2.src, p2), "endpoint-independent mapping");
        assert_eq!(n.live_bindings(2), 1);
    }

    #[test]
    fn distinct_flows_get_distinct_ports() {
        let mut n = nat();
        let o1 = n.v6_to_v4(&udp_v6(40000, a4(SERVER4), b"1"), 0).unwrap();
        let o2 = n.v6_to_v4(&udp_v6(40001, a4(SERVER4), b"2"), 0).unwrap();
        let t1 = (
            o1.src,
            UdpDatagram::decode_v4(&o1.payload, o1.src, o1.dst)
                .unwrap()
                .src_port,
        );
        let t2 = (
            o2.src,
            UdpDatagram::decode_v4(&o2.payload, o2.src, o2.dst)
                .unwrap()
                .src_port,
        );
        assert_ne!(t1, t2);
    }

    #[test]
    fn unsolicited_inbound_dropped() {
        let mut n = nat();
        let stray = UdpDatagram::new(53, 61000, b"x".to_vec());
        let pkt = Ipv4Packet::new(
            a4(SERVER4),
            a4("203.0.113.64"),
            proto::UDP,
            stray.encode_v4(a4(SERVER4), a4("203.0.113.64")),
        );
        assert_eq!(n.v4_to_v6(&pkt, 0), Err(XlatError::NoBinding));
        assert_eq!(n.dropped_no_binding, 1);
    }

    #[test]
    fn udp_binding_expires() {
        let mut n = nat();
        let out = n.v6_to_v4(&udp_v6(40000, a4(SERVER4), b"q"), 0).unwrap();
        let od = UdpDatagram::decode_v4(&out.payload, out.src, out.dst).unwrap();
        let reply = UdpDatagram::new(53, od.src_port, b"r".to_vec());
        let rpkt = Ipv4Packet::new(
            a4(SERVER4),
            out.src,
            proto::UDP,
            reply.encode_v4(a4(SERVER4), out.src),
        );
        // Within lifetime: passes. After 300 s: dropped.
        assert!(n.v4_to_v6(&rpkt, 299).is_ok());
        assert_eq!(n.v4_to_v6(&rpkt, 301), Err(XlatError::NoBinding));
    }

    #[test]
    fn tcp_established_outlives_transitory() {
        let mut n = nat();
        let dst = Nat64Prefix::well_known().embed_unchecked(a4(SERVER4));
        let syn = TcpSegment::new(50000, 80, 1, 0, TcpFlags::SYN);
        let pkt = Ipv6Packet::new(a6(CLIENT), dst, proto::TCP, syn.encode_v6(a6(CLIENT), dst));
        n.v6_to_v4(&pkt, 0).unwrap();
        // Transitory lifetime 240 s: gone at 241 unless refreshed by an ACK.
        let ack = TcpSegment::new(50000, 80, 2, 1, TcpFlags::ACK);
        let apkt = Ipv6Packet::new(a6(CLIENT), dst, proto::TCP, ack.encode_v6(a6(CLIENT), dst));
        n.v6_to_v4(&apkt, 100).unwrap(); // refresh to established lifetime
        assert_eq!(n.live_bindings(100 + 7000), 1, "established TCP persists");
        assert_eq!(n.live_bindings(100 + 7441), 0);
    }

    #[test]
    fn icmp_echo_uses_ident_as_port() {
        let mut n = nat();
        let dst = Nat64Prefix::well_known().embed_unchecked(a4(SERVER4));
        let m = Icmpv6Message::EchoRequest {
            ident: 0x77,
            seq: 1,
            payload: vec![1, 2, 3],
        };
        let pkt = Ipv6Packet::new(a6(CLIENT), dst, proto::ICMPV6, m.encode(a6(CLIENT), dst));
        let out = n.v6_to_v4(&pkt, 0).unwrap();
        let om = v6wire::icmpv4::Icmpv4Message::decode(&out.payload).unwrap();
        let ext_ident = match om {
            v6wire::icmpv4::Icmpv4Message::EchoRequest { ident, .. } => ident,
            other => panic!("unexpected {other:?}"),
        };
        // Reply to the external ident maps back.
        let reply = v6wire::icmpv4::Icmpv4Message::EchoReply {
            ident: ext_ident,
            seq: 1,
            payload: vec![1, 2, 3],
        };
        let rpkt = Ipv4Packet::new(a4(SERVER4), out.src, proto::ICMP, reply.encode());
        let back = n.v4_to_v6(&rpkt, 10).unwrap();
        let bm = Icmpv6Message::decode(&back.payload, back.src, back.dst).unwrap();
        assert!(matches!(bm, Icmpv6Message::EchoReply { ident: 0x77, .. }));
    }

    #[test]
    fn non_prefix_destination_rejected() {
        let mut n = nat();
        let d = UdpDatagram::new(1, 2, vec![]);
        let dst = a6("2600::1");
        let pkt = Ipv6Packet::new(a6(CLIENT), dst, proto::UDP, d.encode_v6(a6(CLIENT), dst));
        assert!(matches!(
            n.v6_to_v4(&pkt, 0),
            Err(XlatError::NotInPrefix(_))
        ));
    }

    #[test]
    fn pool_exhaustion() {
        let mut n = Nat64::new(
            Nat64Prefix::well_known(),
            vec![a4("203.0.113.64")],
            Nat64Config {
                port_floor: u16::MAX - 2, // only ports 65533, 65534
                ..Default::default()
            },
        );
        // The allocator wraps to 1024 after MAX, so constrain by exhausting
        // the wrap space too — instead verify simply that distinct flows get
        // the two high ports and the pool then wraps to 1024.
        let o1 = n.v6_to_v4(&udp_v6(1, a4(SERVER4), b""), 0).unwrap();
        let o2 = n.v6_to_v4(&udp_v6(2, a4(SERVER4), b""), 0).unwrap();
        let p1 = UdpDatagram::decode_v4(&o1.payload, o1.src, o1.dst)
            .unwrap()
            .src_port;
        let p2 = UdpDatagram::decode_v4(&o2.payload, o2.src, o2.dst)
            .unwrap()
            .src_port;
        assert_ne!(p1, p2);
        assert!(p1 >= u16::MAX - 2);
    }

    #[test]
    fn table_cap_refuses_new_flows_but_refreshes_old() {
        let mut n = Nat64::new(
            Nat64Prefix::well_known(),
            vec![a4("203.0.113.64")],
            Nat64Config {
                max_bindings: Some(1),
                ..Default::default()
            },
        );
        let first = n.v6_to_v4(&udp_v6(40000, a4(SERVER4), b"a"), 0).unwrap();
        assert!(matches!(
            n.v6_to_v4(&udp_v6(40001, a4(SERVER4), b"b"), 1),
            Err(XlatError::TableFull)
        ));
        assert_eq!(n.dropped_table_full, 1);
        // The established flow keeps working (binding refresh).
        let again = n.v6_to_v4(&udp_v6(40000, a4(SERVER4), b"c"), 2).unwrap();
        assert_eq!(first.src, again.src);
        assert_eq!(n.outbound, 2);
        // Once the old binding ages out, the slot frees up.
        assert!(n.v6_to_v4(&udp_v6(40001, a4(SERVER4), b"d"), 400).is_ok());
        assert_eq!(n.metrics().get("dropped_table_full"), 1);
    }

    #[test]
    fn expire_cleans_reverse_index() {
        let mut n = nat();
        n.v6_to_v4(&udp_v6(40000, a4(SERVER4), b"q"), 0).unwrap();
        assert_eq!(n.live_bindings(1), 1);
        n.expire(301);
        assert_eq!(n.live_bindings(0), 0, "binding fully removed");
        assert!(n.udp.reverse.is_empty());
    }
}
