//! SIIT — Stateless IP/ICMP Translation (RFC 7915).
//!
//! Translates one IP packet between families given the already-decided new
//! source and destination addresses (address *selection* is the caller's
//! job: NAT64 consults its BIB, CLAT applies its static prefixes).
//!
//! Transport checksums are rebuilt against the new pseudo-header by
//! re-encoding the parsed transport payload; ICMP types are mapped per
//! RFC 7915 §4.2/§5.2.

use std::net::{Ipv4Addr, Ipv6Addr};
use v6wire::icmpv4::Icmpv4Message;
use v6wire::icmpv6::Icmpv6Message;
use v6wire::ipv4::{proto, Ipv4Packet};
use v6wire::ipv6::Ipv6Packet;
use v6wire::tcp::TcpSegment;
use v6wire::udp::UdpDatagram;
use v6wire::WireError;

/// Translation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XlatError {
    /// Transport protocol the translator does not carry.
    UnsupportedProtocol(u8),
    /// TTL / hop limit would reach zero.
    HopLimitExceeded,
    /// The destination is not covered by the translation prefix.
    NotInPrefix(Ipv6Addr),
    /// No NAT64 binding exists for an inbound packet.
    NoBinding,
    /// The NAT64 pool has no free ports.
    PoolExhausted,
    /// The NAT64 session table is at its configured capacity.
    TableFull,
    /// The inner transport payload failed to parse.
    Wire(WireError),
    /// An ICMP message with no defined mapping (dropped per RFC 7915).
    UntranslatableIcmp,
}

impl core::fmt::Display for XlatError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            XlatError::UnsupportedProtocol(p) => write!(f, "xlat: unsupported protocol {p}"),
            XlatError::HopLimitExceeded => write!(f, "xlat: hop limit exceeded"),
            XlatError::NotInPrefix(a) => write!(f, "xlat: {a} not in translation prefix"),
            XlatError::NoBinding => write!(f, "xlat: no NAT64 binding"),
            XlatError::PoolExhausted => write!(f, "xlat: NAT64 pool exhausted"),
            XlatError::TableFull => write!(f, "xlat: NAT64 session table full"),
            XlatError::Wire(e) => write!(f, "xlat: {e}"),
            XlatError::UntranslatableIcmp => write!(f, "xlat: untranslatable ICMP"),
        }
    }
}

impl std::error::Error for XlatError {}

impl From<WireError> for XlatError {
    fn from(e: WireError) -> Self {
        XlatError::Wire(e)
    }
}

/// Optional transport rewrite applied during translation (NAT64's port
/// mapping). `None` keeps ports/identifiers unchanged (CLAT).
#[derive(Debug, Clone, Copy, Default)]
pub struct PortRewrite {
    /// Replace the source port / ICMP identifier.
    pub src: Option<u16>,
    /// Replace the destination port / ICMP identifier.
    pub dst: Option<u16>,
}

/// Translate an IPv6 packet to IPv4 with the given new addresses.
/// Decrements the hop limit (the translator is a router).
pub fn v6_to_v4(
    pkt: &Ipv6Packet,
    new_src: Ipv4Addr,
    new_dst: Ipv4Addr,
    rewrite: PortRewrite,
) -> Result<Ipv4Packet, XlatError> {
    if pkt.hop_limit <= 1 {
        return Err(XlatError::HopLimitExceeded);
    }
    let (protocol, payload) = match pkt.next_header {
        proto::UDP => {
            let mut d = UdpDatagram::decode_v6(&pkt.payload, pkt.src, pkt.dst)?;
            apply_ports(&mut d.src_port, &mut d.dst_port, rewrite);
            (proto::UDP, d.encode_v4(new_src, new_dst))
        }
        proto::TCP => {
            let mut s = TcpSegment::decode_v6(&pkt.payload, pkt.src, pkt.dst)?;
            apply_ports(&mut s.src_port, &mut s.dst_port, rewrite);
            (proto::TCP, s.encode_v4(new_src, new_dst))
        }
        proto::ICMPV6 => {
            let m = Icmpv6Message::decode(&pkt.payload, pkt.src, pkt.dst)?;
            let v4 = icmp6_to_icmp4(&m, rewrite)?;
            (proto::ICMP, v4.encode())
        }
        other => return Err(XlatError::UnsupportedProtocol(other)),
    };
    let mut out = Ipv4Packet::new(new_src, new_dst, protocol, payload);
    out.ttl = pkt.hop_limit - 1;
    out.dscp_ecn = pkt.traffic_class;
    out.dont_fragment = true; // RFC 7915 §5.1: DF=1 when no fragmentation
    Ok(out)
}

/// Translate an IPv4 packet to IPv6 with the given new addresses.
pub fn v4_to_v6(
    pkt: &Ipv4Packet,
    new_src: Ipv6Addr,
    new_dst: Ipv6Addr,
    rewrite: PortRewrite,
) -> Result<Ipv6Packet, XlatError> {
    if pkt.ttl <= 1 {
        return Err(XlatError::HopLimitExceeded);
    }
    let (next_header, payload) = match pkt.protocol {
        proto::UDP => {
            let mut d = UdpDatagram::decode_v4(&pkt.payload, pkt.src, pkt.dst)?;
            apply_ports(&mut d.src_port, &mut d.dst_port, rewrite);
            (proto::UDP, d.encode_v6(new_src, new_dst))
        }
        proto::TCP => {
            let mut s = TcpSegment::decode_v4(&pkt.payload, pkt.src, pkt.dst)?;
            apply_ports(&mut s.src_port, &mut s.dst_port, rewrite);
            (proto::TCP, s.encode_v6(new_src, new_dst))
        }
        proto::ICMP => {
            let m = Icmpv4Message::decode(&pkt.payload)?;
            let v6 = icmp4_to_icmp6(&m, rewrite)?;
            (proto::ICMPV6, v6.encode(new_src, new_dst))
        }
        other => return Err(XlatError::UnsupportedProtocol(other)),
    };
    let mut out = Ipv6Packet::new(new_src, new_dst, next_header, payload);
    out.hop_limit = pkt.ttl - 1;
    out.traffic_class = pkt.dscp_ecn;
    Ok(out)
}

fn apply_ports(src: &mut u16, dst: &mut u16, rewrite: PortRewrite) {
    if let Some(s) = rewrite.src {
        *src = s;
    }
    if let Some(d) = rewrite.dst {
        *dst = d;
    }
}

/// ICMPv6 → ICMPv4 type/code mapping (RFC 7915 §5.2).
fn icmp6_to_icmp4(m: &Icmpv6Message, rewrite: PortRewrite) -> Result<Icmpv4Message, XlatError> {
    Ok(match m {
        Icmpv6Message::EchoRequest {
            ident,
            seq,
            payload,
        } => Icmpv4Message::EchoRequest {
            ident: rewrite.src.unwrap_or(*ident),
            seq: *seq,
            payload: payload.clone(),
        },
        Icmpv6Message::EchoReply {
            ident,
            seq,
            payload,
        } => Icmpv4Message::EchoReply {
            ident: rewrite.dst.unwrap_or(*ident),
            seq: *seq,
            payload: payload.clone(),
        },
        Icmpv6Message::DestinationUnreachable { code, invoking } => {
            // RFC 7915 §5.2: v6 codes 0/2/3 → v4 host unreachable (1);
            // code 1 (admin) → 10; code 4 (port) → 3.
            let v4code = match code {
                0 | 2 | 3 => 1,
                1 => 10,
                4 => 3,
                _ => return Err(XlatError::UntranslatableIcmp),
            };
            Icmpv4Message::DestinationUnreachable {
                code: v4code,
                // The invoking-packet excerpt would itself need translation;
                // the simulator's consumers only inspect type/code.
                invoking: invoking.clone(),
            }
        }
        // NDP messages are link-local by definition and never translate.
        _ => return Err(XlatError::UntranslatableIcmp),
    })
}

/// ICMPv4 → ICMPv6 type/code mapping (RFC 7915 §4.2).
fn icmp4_to_icmp6(m: &Icmpv4Message, rewrite: PortRewrite) -> Result<Icmpv6Message, XlatError> {
    Ok(match m {
        Icmpv4Message::EchoRequest {
            ident,
            seq,
            payload,
        } => Icmpv6Message::EchoRequest {
            ident: rewrite.src.unwrap_or(*ident),
            seq: *seq,
            payload: payload.clone(),
        },
        Icmpv4Message::EchoReply {
            ident,
            seq,
            payload,
        } => Icmpv6Message::EchoReply {
            ident: rewrite.dst.unwrap_or(*ident),
            seq: *seq,
            payload: payload.clone(),
        },
        Icmpv4Message::DestinationUnreachable { code, invoking } => {
            let v6code = match code {
                0 | 1 | 5 | 6 | 7 | 8 | 11 | 12 => 0, // no route
                3 => 4,                               // port unreachable
                9 | 10 | 13 | 15 => 1,                // admin prohibited
                _ => return Err(XlatError::UntranslatableIcmp),
            };
            Icmpv6Message::DestinationUnreachable {
                code: v6code,
                invoking: invoking.clone(),
            }
        }
        Icmpv4Message::TimeExceeded { .. } => {
            // Type 11 → ICMPv6 type 3; our ICMPv6 enum models unreachable +
            // echo + NDP, so time-exceeded maps to the closest surfaced
            // diagnostic: no-route unreachable.
            Icmpv6Message::DestinationUnreachable {
                code: 0,
                invoking: Vec::new(),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6wire::tcp::TcpFlags;

    const V6SRC: &str = "2607:fb90:9bda:a425::50";
    const V6DST: &str = "64:ff9b::be5c:9e04";
    const V4SRC: &str = "192.168.12.50";
    const V4DST: &str = "190.92.158.4";

    fn a4(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn a6(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn udp_v6_to_v4_checksum_valid() {
        let d = UdpDatagram::new(40000, 53, b"dns query".to_vec());
        let pkt = Ipv6Packet::new(
            a6(V6SRC),
            a6(V6DST),
            proto::UDP,
            d.encode_v6(a6(V6SRC), a6(V6DST)),
        );
        let out = v6_to_v4(&pkt, a4(V4SRC), a4(V4DST), PortRewrite::default()).unwrap();
        assert_eq!(out.ttl, 63, "hop limit decremented");
        let got = UdpDatagram::decode_v4(&out.payload, out.src, out.dst).unwrap();
        assert_eq!(got, d);
    }

    #[test]
    fn tcp_roundtrip_both_ways() {
        let mut seg = TcpSegment::new(50000, 80, 100, 0, TcpFlags::SYN);
        seg.mss = Some(1460);
        let pkt = Ipv4Packet::new(
            a4(V4SRC),
            a4(V4DST),
            proto::TCP,
            seg.encode_v4(a4(V4SRC), a4(V4DST)),
        );
        let v6 = v4_to_v6(&pkt, a6(V6SRC), a6(V6DST), PortRewrite::default()).unwrap();
        let back = v6_to_v4(&v6, a4(V4SRC), a4(V4DST), PortRewrite::default()).unwrap();
        let got = TcpSegment::decode_v4(&back.payload, back.src, back.dst).unwrap();
        assert_eq!(got, seg);
        assert_eq!(back.ttl, 62, "two translator hops");
    }

    #[test]
    fn port_rewrite_applied() {
        let d = UdpDatagram::new(40000, 53, vec![1]);
        let pkt = Ipv6Packet::new(
            a6(V6SRC),
            a6(V6DST),
            proto::UDP,
            d.encode_v6(a6(V6SRC), a6(V6DST)),
        );
        let out = v6_to_v4(
            &pkt,
            a4("203.0.113.1"),
            a4(V4DST),
            PortRewrite {
                src: Some(61000),
                dst: None,
            },
        )
        .unwrap();
        let got = UdpDatagram::decode_v4(&out.payload, out.src, out.dst).unwrap();
        assert_eq!(got.src_port, 61000);
        assert_eq!(got.dst_port, 53);
    }

    #[test]
    fn echo_translation_fig7_ping() {
        // Fig. 7: Windows XP pings sc24.supercomputing.org via NAT64.
        let m = Icmpv6Message::EchoRequest {
            ident: 0x1c5a,
            seq: 1,
            payload: vec![0x61; 32],
        };
        let pkt = Ipv6Packet::new(
            a6(V6SRC),
            a6(V6DST),
            proto::ICMPV6,
            m.encode(a6(V6SRC), a6(V6DST)),
        );
        let out = v6_to_v4(&pkt, a4(V4SRC), a4(V4DST), PortRewrite::default()).unwrap();
        let got = Icmpv4Message::decode(&out.payload).unwrap();
        assert!(matches!(
            got,
            Icmpv4Message::EchoRequest {
                ident: 0x1c5a,
                seq: 1,
                ..
            }
        ));
        // And the reply comes back.
        let reply = Icmpv4Message::EchoReply {
            ident: 0x1c5a,
            seq: 1,
            payload: vec![0x61; 32],
        };
        let rpkt = Ipv4Packet::new(a4(V4DST), a4(V4SRC), proto::ICMP, reply.encode());
        let back = v4_to_v6(&rpkt, a6(V6DST), a6(V6SRC), PortRewrite::default()).unwrap();
        let gotr = Icmpv6Message::decode(&back.payload, back.src, back.dst).unwrap();
        assert!(matches!(
            gotr,
            Icmpv6Message::EchoReply { ident: 0x1c5a, .. }
        ));
    }

    #[test]
    fn unreachable_code_mapping() {
        // v4 port-unreachable (3,3) → v6 (1,4).
        let m = Icmpv4Message::DestinationUnreachable {
            code: 3,
            invoking: vec![0; 28],
        };
        let pkt = Ipv4Packet::new(a4(V4DST), a4(V4SRC), proto::ICMP, m.encode());
        let out = v4_to_v6(&pkt, a6(V6DST), a6(V6SRC), PortRewrite::default()).unwrap();
        let got = Icmpv6Message::decode(&out.payload, out.src, out.dst).unwrap();
        assert!(matches!(
            got,
            Icmpv6Message::DestinationUnreachable { code: 4, .. }
        ));
        // v6 admin-prohibited (1,1) → v4 (3,10).
        let m6 = Icmpv6Message::DestinationUnreachable {
            code: 1,
            invoking: vec![],
        };
        let pkt6 = Ipv6Packet::new(
            a6(V6SRC),
            a6(V6DST),
            proto::ICMPV6,
            m6.encode(a6(V6SRC), a6(V6DST)),
        );
        let out4 = v6_to_v4(&pkt6, a4(V4SRC), a4(V4DST), PortRewrite::default()).unwrap();
        let got4 = Icmpv4Message::decode(&out4.payload).unwrap();
        assert!(matches!(
            got4,
            Icmpv4Message::DestinationUnreachable { code: 10, .. }
        ));
    }

    #[test]
    fn hop_limit_guard() {
        let d = UdpDatagram::new(1, 2, vec![]);
        let mut pkt = Ipv6Packet::new(
            a6(V6SRC),
            a6(V6DST),
            proto::UDP,
            d.encode_v6(a6(V6SRC), a6(V6DST)),
        );
        pkt.hop_limit = 1;
        assert_eq!(
            v6_to_v4(&pkt, a4(V4SRC), a4(V4DST), PortRewrite::default()),
            Err(XlatError::HopLimitExceeded)
        );
    }

    #[test]
    fn ndp_never_translates() {
        let m = Icmpv6Message::RouterSolicitation(Default::default());
        let pkt = Ipv6Packet::new(
            a6(V6SRC),
            a6(V6DST),
            proto::ICMPV6,
            m.encode(a6(V6SRC), a6(V6DST)),
        );
        assert_eq!(
            v6_to_v4(&pkt, a4(V4SRC), a4(V4DST), PortRewrite::default()),
            Err(XlatError::UntranslatableIcmp)
        );
    }

    #[test]
    fn unsupported_protocol_rejected() {
        let pkt = Ipv6Packet::new(a6(V6SRC), a6(V6DST), 132 /* SCTP */, vec![0; 12]);
        assert_eq!(
            v6_to_v4(&pkt, a4(V4SRC), a4(V4DST), PortRewrite::default()),
            Err(XlatError::UnsupportedProtocol(132))
        );
    }

    #[test]
    fn dscp_copied() {
        let d = UdpDatagram::new(1, 2, vec![]);
        let mut pkt = Ipv6Packet::new(
            a6(V6SRC),
            a6(V6DST),
            proto::UDP,
            d.encode_v6(a6(V6SRC), a6(V6DST)),
        );
        pkt.traffic_class = 0xb8; // EF
        let out = v6_to_v4(&pkt, a4(V4SRC), a4(V4DST), PortRewrite::default()).unwrap();
        assert_eq!(out.dscp_ecn, 0xb8);
    }
}
