//! Property-based tests for the translators: SIIT double-translation
//! identity, NAT64 flow-tuple restoration, CLAT round-trips.

use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};
use v6addr::rfc6052::Nat64Prefix;
use v6wire::ipv4::{proto, Ipv4Packet};
use v6wire::ipv6::Ipv6Packet;
use v6wire::tcp::{TcpFlags, TcpSegment};
use v6wire::udp::UdpDatagram;
use v6xlat::clat::Clat;
use v6xlat::nat64::Nat64;
use v6xlat::siit::{self, PortRewrite};

fn arb_v4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_v6() -> impl Strategy<Value = Ipv6Addr> {
    any::<u128>().prop_map(Ipv6Addr::from)
}

proptest! {
    /// SIIT v4→v6→v4 restores the original transport payload and ports
    /// (TTL is spent at each hop, DSCP preserved).
    #[test]
    fn siit_double_translation_identity_udp(
        s4 in arb_v4(), d4 in arb_v4(), s6 in arb_v6(), d6 in arb_v6(),
        sp in any::<u16>(), dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        dscp in any::<u8>(),
    ) {
        let d = UdpDatagram::new(sp, dp, payload);
        let mut pkt = Ipv4Packet::new(s4, d4, proto::UDP, d.encode_v4(s4, d4));
        pkt.dscp_ecn = dscp;
        let v6 = siit::v4_to_v6(&pkt, s6, d6, PortRewrite::default()).unwrap();
        prop_assert_eq!(v6.traffic_class, dscp);
        let back = siit::v6_to_v4(&v6, s4, d4, PortRewrite::default()).unwrap();
        let got = UdpDatagram::decode_v4(&back.payload, back.src, back.dst).unwrap();
        prop_assert_eq!(got, d);
        prop_assert_eq!(back.ttl, 62);
        prop_assert_eq!(back.dscp_ecn, dscp);
    }

    /// Same identity for TCP, with flags and MSS surviving.
    #[test]
    fn siit_double_translation_identity_tcp(
        s4 in arb_v4(), d4 in arb_v4(), s6 in arb_v6(), d6 in arb_v6(),
        sp in any::<u16>(), dp in any::<u16>(), seq in any::<u32>(),
        mss in proptest::option::of(any::<u16>()),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut seg = TcpSegment::new(sp, dp, seq, 0, TcpFlags::PSH_ACK);
        seg.mss = mss;
        seg.payload = payload;
        let pkt = Ipv4Packet::new(s4, d4, proto::TCP, seg.encode_v4(s4, d4));
        let v6 = siit::v4_to_v6(&pkt, s6, d6, PortRewrite::default()).unwrap();
        let back = siit::v6_to_v4(&v6, s4, d4, PortRewrite::default()).unwrap();
        let got = TcpSegment::decode_v4(&back.payload, back.src, back.dst).unwrap();
        prop_assert_eq!(got, seg);
    }

    /// Any outbound NAT64 flow's reply is delivered back to the exact
    /// internal (address, port) that originated it.
    #[test]
    fn nat64_restores_flow_tuple(
        iid in any::<u64>(),
        sp in 1024u16..,
        dst4 in arb_v4(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let client = Ipv6Addr::from((0x2607_fb90u128) << 96 | u128::from(iid));
        let mut nat = Nat64::well_known_on(vec![Ipv4Addr::new(203, 0, 113, 64)]);
        let dst = Nat64Prefix::well_known().embed_unchecked(dst4);
        let d = UdpDatagram::new(sp, 53, payload.clone());
        let pkt = Ipv6Packet::new(client, dst, proto::UDP, d.encode_v6(client, dst));
        let out = nat.v6_to_v4(&pkt, 10).unwrap();
        prop_assert_eq!(out.dst, dst4);
        let od = UdpDatagram::decode_v4(&out.payload, out.src, out.dst).unwrap();
        prop_assert_eq!(&od.payload, &payload);
        // Reply retraces.
        let reply = UdpDatagram::new(53, od.src_port, payload.clone());
        let rpkt = Ipv4Packet::new(dst4, out.src, proto::UDP, reply.encode_v4(dst4, out.src));
        let back = nat.v4_to_v6(&rpkt, 11).unwrap();
        prop_assert_eq!(back.dst, client);
        let bd = UdpDatagram::decode_v6(&back.payload, back.src, back.dst).unwrap();
        prop_assert_eq!(bd.dst_port, sp);
    }

    /// Distinct internal flows never share an external (addr, port) tuple.
    #[test]
    fn nat64_external_tuples_unique(ports in proptest::collection::hash_set(1024u16.., 2..10)) {
        let client: Ipv6Addr = "2607:fb90::50".parse().unwrap();
        let dst4 = Ipv4Addr::new(190, 92, 158, 4);
        let mut nat = Nat64::well_known_on(vec![Ipv4Addr::new(203, 0, 113, 64)]);
        let dst = Nat64Prefix::well_known().embed_unchecked(dst4);
        let mut seen = std::collections::HashSet::new();
        for sp in ports {
            let d = UdpDatagram::new(sp, 53, vec![]);
            let pkt = Ipv6Packet::new(client, dst, proto::UDP, d.encode_v6(client, dst));
            let out = nat.v6_to_v4(&pkt, 0).unwrap();
            let od = UdpDatagram::decode_v4(&out.payload, out.src, out.dst).unwrap();
            prop_assert!(seen.insert((out.src, od.src_port)), "tuple reuse");
        }
    }

    /// CLAT out-and-back is the identity on the application's view.
    #[test]
    fn clat_roundtrip_identity(
        dst4 in arb_v4(),
        sp in any::<u16>(), dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let clat = Clat::new("2607:fb90::c1a7".parse().unwrap(), Nat64Prefix::well_known());
        let d = UdpDatagram::new(sp, dp, payload);
        let pkt = Ipv4Packet::new(clat.host_v4, dst4, proto::UDP, d.encode_v4(clat.host_v4, dst4));
        let v6 = clat.v4_out(&pkt).unwrap();
        // The far end replies by swapping the tuple.
        let rd = UdpDatagram::decode_v6(&v6.payload, v6.src, v6.dst).unwrap();
        let reply = UdpDatagram::new(rd.dst_port, rd.src_port, rd.payload.clone());
        let rpkt = Ipv6Packet::new(v6.dst, v6.src, proto::UDP, reply.encode_v6(v6.dst, v6.src));
        let back = clat.v6_in(&rpkt).unwrap();
        prop_assert_eq!(back.src, dst4);
        prop_assert_eq!(back.dst, clat.host_v4);
        let bd = UdpDatagram::decode_v4(&back.payload, back.src, back.dst).unwrap();
        prop_assert_eq!(bd.dst_port, sp);
        prop_assert_eq!(bd.payload, rd.payload);
    }

    /// Translators never panic on arbitrary bytes in the payload position.
    #[test]
    fn translators_reject_garbage_gracefully(
        s6 in arb_v6(), d6 in arb_v6(), nh in any::<u8>(),
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let pkt = Ipv6Packet::new(s6, d6, nh, garbage);
        let _ = siit::v6_to_v4(
            &pkt,
            Ipv4Addr::new(192, 0, 2, 1),
            Ipv4Addr::new(192, 0, 2, 2),
            PortRewrite::default(),
        );
        let mut nat = Nat64::well_known_on(vec![Ipv4Addr::new(203, 0, 113, 64)]);
        let _ = nat.v6_to_v4(&pkt, 0);
    }
}
