//! The Argonne-Auth scenario (paper §IV): the AAA system places compliant
//! devices into RFC 8925-enabled pools, while "service accounts … tightly
//! controlled for devices which must retain IPv4-only support" are exempt
//! from option 108.
//!
//! ```sh
//! cargo run --example argonne_auth
//! ```

use v6host::profiles::OsProfile;
use v6host::tasks::AppTask;
use v6testbed::Testbed;

fn main() {
    let mut tb = Testbed::paper_default();

    // Ordinary compliant laptops.
    let laptops: Vec<_> = (0..3).map(|_| tb.add_host(OsProfile::macos())).collect();
    // A beamline instrument that must keep IPv4 (APS CAT-style kit): its
    // MAC is registered as a service account in AAA.
    let instrument = tb.add_host(OsProfile::macos());
    let mac = tb.host(instrument).mac;
    tb.pi_server()
        .dhcp
        .as_mut()
        .expect("pi dhcp")
        .config
        .v6only_exempt
        .insert(mac);

    tb.boot();

    println!("== Argonne-Auth pool assignment ==");
    for (label, &id) in laptops
        .iter()
        .enumerate()
        .map(|(i, id)| (format!("laptop-{i}"), id))
        .chain(std::iter::once((
            "instrument (service acct)".to_string(),
            &instrument,
        )))
    {
        let h = tb.host(id);
        println!(
            "{label:<26} rfc8925-engaged={:<5} v4-path={:<5}",
            h.v6only_mode,
            h.v4_active()
        );
    }

    // Everyone still reaches the IPv4-only conference site — the laptops
    // via NAT64, the instrument via plain IPv4 NAT44.
    println!("\n== everyone browses the IPv4-only site ==");
    for &id in laptops.iter().chain(std::iter::once(&instrument)) {
        let os = tb.host(id).v6only_mode;
        let o = tb.run_task(
            id,
            AppTask::Browse {
                name: "sc24.supercomputing.org".parse().unwrap(),
                path: "/".into(),
            },
            25,
        );
        println!(
            "{} -> peer {:?}",
            if os {
                "ipv6-only laptop "
            } else {
                "ipv4 service acct"
            },
            o.peer()
        );
    }

    // Note: even the service account reached the v4-only site via NAT64 —
    // a genuine DNS64 side effect (the testbed resolver synthesizes AAAA,
    // and RFC 6724 prefers it). Where the retained IPv4 matters is
    // IPv4-literal traffic, which the IPv6-only laptops can only do via
    // CLAT:
    println!("\n== IPv4-literal application (no DNS) ==");
    for (label, id) in [("laptop-0", laptops[0]), ("instrument", instrument)] {
        let o = tb.run_task(
            id,
            AppTask::LiteralV4 {
                addr: "44.12.7.9".parse().unwrap(),
                port: 5198,
            },
            25,
        );
        let via = match tb.host(id).clat {
            Some(_) => "via CLAT/464XLAT",
            None => "native IPv4",
        };
        println!("{label:<12} ok={} ({via})", o.is_success());
    }

    let (_, summary) = v6testbed::census(&mut tb);
    println!(
        "\ncensus: associated={} accurate-v6only={} (the service account keeps IPv4)",
        summary.associated, summary.accurate_v6only
    );
}
