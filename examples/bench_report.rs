//! Machine-readable engine performance report.
//!
//! Measures the two benchmarks the perf work is judged by — the raw
//! engine relay ring and the 66-cell fleet sweep — in every [`TraceMode`],
//! and writes `BENCH_engine.json` next to the repo root:
//!
//! ```sh
//! cargo run --release --example bench_report
//! cat BENCH_engine.json
//! ```
//!
//! The JSON also carries the recorded pre-optimization baseline (eager
//! string tracing, `HashMap` link table, no frame pool) so the speedup is
//! auditable without checking out the old revision.

use std::any::Any;
use std::fmt::Write as _;
use std::time::Instant;
use v6sim::engine::{Ctx, Network, Node, TraceMode};
use v6sim::time::SimTime;
use v6testbed::{Scenario, TraceMode as TbTraceMode};
use v6wire::mac::MacAddr;
use v6wire::packet::build_udp_v4;
use v6wire::udp::UdpDatagram;

/// Pre-PR `fleet_throughput/threads01` (the acceptance comparison):
/// median ms per 66-cell sweep and scenarios/second, measured on this
/// machine immediately before the hot-path rework.
const BASELINE_FLEET_MS: f64 = 25.569;
const BASELINE_FLEET_ELEM_S: f64 = 2581.0;

struct Relay {
    name: String,
}

impl Node for Relay {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_frame(&mut self, _port: u32, frame: &[u8], ctx: &mut Ctx) {
        let buf = ctx.buffer_from(frame);
        ctx.send(1, buf);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The same 4-node relay ring as `benches/engine_hot_path.rs`: 4 frames
/// in flight, 10 µs hops, 100 virtual milliseconds.
fn run_ring(mode: TraceMode) -> (u64, u64) {
    let mut net = Network::new();
    net.trace_mode = mode;
    let nodes: Vec<_> = (0..4)
        .map(|i| {
            net.add_node(Box::new(Relay {
                name: format!("relay{i}"),
            }))
        })
        .collect();
    for i in 0..4 {
        net.link(nodes[i], 1, nodes[(i + 1) % 4], 0, SimTime::from_micros(10));
    }
    net.start();
    net.run_until(SimTime::ZERO);
    for n in 0..4u8 {
        let frame = build_udp_v4(
            MacAddr::new([2, 0, 0, 0, 0xee, n]),
            MacAddr::new([2, 0, 0, 0, 0xee, n + 1]),
            "10.9.0.1".parse().expect("static ip"),
            "10.9.0.2".parse().expect("static ip"),
            &UdpDatagram::new(4000, 4001, vec![n; 64]),
        );
        net.with_node::<Relay, _>(nodes[0], |_, ctx| ctx.send(1, frame));
    }
    net.run_for(SimTime::from_millis(100));
    (net.frames_delivered, net.metrics().engine.events_processed)
}

/// Median wall-clock seconds of `samples` runs of `f`.
fn median_secs(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

fn main() {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"generated_by\": \"examples/bench_report.rs\",");

    // Engine relay ring, per trace mode.
    let (frames, events) = run_ring(TraceMode::Off);
    let _ = writeln!(json, "  \"engine_hot_path\": {{");
    let _ = writeln!(
        json,
        "    \"workload\": \"4-node relay ring, 4 frames in flight, 100 virtual ms\","
    );
    let _ = writeln!(json, "    \"frames_per_iter\": {frames},");
    let _ = writeln!(json, "    \"events_per_iter\": {events},");
    for (i, (label, mode)) in [
        ("off", TraceMode::Off),
        ("hops", TraceMode::Hops),
        ("full", TraceMode::Full),
    ]
    .into_iter()
    .enumerate()
    {
        run_ring(mode); // warm-up
        let secs = median_secs(7, || {
            std::hint::black_box(run_ring(mode));
        });
        let comma = if i < 2 { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{label}\": {{ \"ms_per_iter\": {:.3}, \"frames_per_sec\": {:.0}, \"events_per_sec\": {:.0} }}{comma}",
            secs * 1e3,
            frames as f64 / secs,
            events as f64 / secs,
        );
    }
    let _ = writeln!(json, "  }},");

    // Fleet sweep (the acceptance benchmark), per trace mode.
    let cells = Scenario::matrix(0xBE9C);
    let _ = writeln!(json, "  \"fleet_sweep\": {{");
    let _ = writeln!(json, "    \"cells\": {},", cells.len());
    let mut hops_ms = 0.0;
    for (i, (label, mode)) in [
        ("off", TbTraceMode::Off),
        ("hops", TbTraceMode::Hops),
        ("full", TbTraceMode::Full),
    ]
    .into_iter()
    .enumerate()
    {
        for s in &cells {
            let _ = s.run_with_trace(mode); // warm-up
        }
        let secs = median_secs(7, || {
            for s in &cells {
                std::hint::black_box(s.run_with_trace(mode));
            }
        });
        if label == "hops" {
            hops_ms = secs * 1e3;
        }
        let comma = if i < 2 { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{label}\": {{ \"ms_per_sweep\": {:.3}, \"scenarios_per_sec\": {:.0} }}{comma}",
            secs * 1e3,
            cells.len() as f64 / secs,
        );
    }
    let _ = writeln!(json, "  }},");

    // The before/after the PR is judged on: pre-optimization single-thread
    // fleet sweep vs today's Hops-mode sweep.
    let _ = writeln!(json, "  \"baseline_pre_optimization\": {{");
    let _ = writeln!(json, "    \"fleet_ms_per_sweep\": {BASELINE_FLEET_MS},");
    let _ = writeln!(
        json,
        "    \"fleet_scenarios_per_sec\": {BASELINE_FLEET_ELEM_S}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"speedup_vs_baseline\": {:.2}",
        BASELINE_FLEET_MS / hops_ms
    );
    json.push_str("}\n");

    // Re-emit through the canonical JSON layer, preserving the
    // `population_census` row if `population_census --bench` has
    // written one — the two examples own disjoint sections of the
    // same file.
    let mut doc = v6report::Json::parse(&json).expect("bench json parses");
    if let Ok(prev) = std::fs::read_to_string("BENCH_engine.json") {
        if let Ok(prev) = v6report::Json::parse(&prev) {
            if let Some(row) = prev.get("population_census") {
                doc.set("population_census", row.clone());
            }
        }
    }
    let mut text = doc.canonical();
    text.push('\n');

    print!("{text}");
    std::fs::write("BENCH_engine.json", &text).expect("write BENCH_engine.json");
    eprintln!("wrote BENCH_engine.json");
}
