//! Machine-readable engine performance report.
//!
//! Measures the two benchmarks the perf work is judged by — the raw
//! engine relay ring and the 66-cell fleet sweep — in every [`TraceMode`],
//! and writes `BENCH_engine.json` next to the repo root:
//!
//! ```sh
//! cargo run --release --example bench_report
//! cat BENCH_engine.json
//! ```
//!
//! The JSON also carries the recorded pre-optimization baseline (eager
//! string tracing, `HashMap` link table, no frame pool) so the speedup is
//! auditable without checking out the old revision.

use std::any::Any;
use std::fmt::Write as _;
use std::time::Instant;
use v6sim::engine::{Ctx, Network, Node, TraceMode};
use v6sim::time::SimTime;
use v6testbed::{Scenario, TraceMode as TbTraceMode};
use v6wire::mac::MacAddr;
use v6wire::packet::build_udp_v4;
use v6wire::udp::UdpDatagram;

/// Pre-PR `fleet_throughput/threads01` (the acceptance comparison):
/// median ms per 66-cell sweep and scenarios/second, measured on this
/// machine immediately before the hot-path rework.
const BASELINE_FLEET_MS: f64 = 25.569;
const BASELINE_FLEET_ELEM_S: f64 = 2581.0;

/// Full-trace ring ms/iter recorded immediately before the zero-copy codec
/// rework (owned re-parse + `String` summary per hop).
const BASELINE_FULL_TRACE_MS: f64 = 18.283;

/// The conformance corpus (tests/corpus/README.md): the codec benchmarks
/// run over exactly the inputs the differential suites prove equivalence on.
const CORPUS_FRAMES: &[&[u8]] = &[
    include_bytes!("../tests/corpus/frame_dhcp_discover_opt108.bin"),
    include_bytes!("../tests/corpus/frame_dhcp_offer_opt108.bin"),
    include_bytes!("../tests/corpus/frame_ra_full.bin"),
    include_bytes!("../tests/corpus/frame_dns64_aaaa.bin"),
    include_bytes!("../tests/corpus/frame_poisoned_a.bin"),
    include_bytes!("../tests/corpus/frame_arp_request.bin"),
    include_bytes!("../tests/corpus/frame_tcp_syn_v6.bin"),
    include_bytes!("../tests/corpus/frame_icmpv6_echo.bin"),
    include_bytes!("../tests/corpus/frame_icmpv4_unreach.bin"),
    include_bytes!("../tests/corpus/frame_ndp_ns.bin"),
];

const CORPUS_DNS: &[&[u8]] = &[
    include_bytes!("../tests/corpus/dns_query_a.bin"),
    include_bytes!("../tests/corpus/dns_dns64_response.bin"),
    include_bytes!("../tests/corpus/dns_poisoned_a.bin"),
    include_bytes!("../tests/corpus/dns_all_rtypes.bin"),
];

struct Relay {
    name: String,
}

impl Node for Relay {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_frame(&mut self, _port: u32, frame: &[u8], ctx: &mut Ctx) {
        let buf = ctx.buffer_from(frame);
        ctx.send(1, buf);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The same 4-node relay ring as `benches/engine_hot_path.rs`: 4 frames
/// in flight, 10 µs hops, 100 virtual milliseconds.
fn run_ring(mode: TraceMode) -> (u64, u64) {
    let mut net = Network::new();
    net.trace_mode = mode;
    let nodes: Vec<_> = (0..4)
        .map(|i| {
            net.add_node(Box::new(Relay {
                name: format!("relay{i}"),
            }))
        })
        .collect();
    for i in 0..4 {
        net.link(nodes[i], 1, nodes[(i + 1) % 4], 0, SimTime::from_micros(10));
    }
    net.start();
    net.run_until(SimTime::ZERO);
    for n in 0..4u8 {
        let frame = build_udp_v4(
            MacAddr::new([2, 0, 0, 0, 0xee, n]),
            MacAddr::new([2, 0, 0, 0, 0xee, n + 1]),
            "10.9.0.1".parse().expect("static ip"),
            "10.9.0.2".parse().expect("static ip"),
            &UdpDatagram::new(4000, 4001, vec![n; 64]),
        );
        net.with_node::<Relay, _>(nodes[0], |_, ctx| ctx.send(1, frame));
    }
    net.run_for(SimTime::from_millis(100));
    (net.frames_delivered, net.metrics().engine.events_processed)
}

/// Median nanoseconds per item: `f` processes `items` things, repeated
/// `iters` times per timing sample.
fn ns_per_item(iters: usize, items: usize, mut f: impl FnMut()) -> f64 {
    let secs = median_secs(7, || {
        for _ in 0..iters {
            f();
        }
    });
    secs * 1e9 / (iters * items) as f64
}

/// Median wall-clock seconds of `samples` runs of `f`.
fn median_secs(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

fn main() {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"generated_by\": \"examples/bench_report.rs\",");

    // Engine relay ring, per trace mode.
    let (frames, events) = run_ring(TraceMode::Off);
    let _ = writeln!(json, "  \"engine_hot_path\": {{");
    let _ = writeln!(
        json,
        "    \"workload\": \"4-node relay ring, 4 frames in flight, 100 virtual ms\","
    );
    let _ = writeln!(json, "    \"frames_per_iter\": {frames},");
    let _ = writeln!(json, "    \"events_per_iter\": {events},");
    let mut full_ms = 0.0;
    for (i, (label, mode)) in [
        ("off", TraceMode::Off),
        ("hops", TraceMode::Hops),
        ("full", TraceMode::Full),
    ]
    .into_iter()
    .enumerate()
    {
        run_ring(mode); // warm-up
        let secs = median_secs(7, || {
            std::hint::black_box(run_ring(mode));
        });
        if label == "full" {
            full_ms = secs * 1e3;
        }
        let comma = if i < 2 { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{label}\": {{ \"ms_per_iter\": {:.3}, \"frames_per_sec\": {:.0}, \"events_per_sec\": {:.0} }}{comma}",
            secs * 1e3,
            frames as f64 / secs,
            events as f64 / secs,
        );
    }
    let _ = writeln!(json, "  }},");

    // Zero-copy codec microbenchmarks over the conformance corpus, plus the
    // Full-trace ring against its recorded pre-rework baseline (the
    // summarize-per-hop path is exactly what the view layer accelerates).
    let wire_owned = ns_per_item(2000, CORPUS_FRAMES.len(), || {
        for f in CORPUS_FRAMES {
            std::hint::black_box(v6wire::ParsedFrame::parse(f).expect("corpus frame"));
        }
    });
    let wire_view = ns_per_item(2000, CORPUS_FRAMES.len(), || {
        for f in CORPUS_FRAMES {
            std::hint::black_box(v6wire::FrameView::parse(f).expect("corpus frame"));
        }
    });
    let wire_summarize = ns_per_item(2000, CORPUS_FRAMES.len(), || {
        for f in CORPUS_FRAMES {
            std::hint::black_box(v6wire::packet::summarize(f));
        }
    });
    let dns_owned = ns_per_item(2000, CORPUS_DNS.len(), || {
        for m in CORPUS_DNS {
            std::hint::black_box(v6dns::Message::decode(m).expect("corpus message"));
        }
    });
    let dns_view = ns_per_item(2000, CORPUS_DNS.len(), || {
        for m in CORPUS_DNS {
            std::hint::black_box(v6dns::MessageView::parse(m).expect("corpus message"));
        }
    });
    let ck_buf: Vec<u8> = (0..1500u32).map(|i| (i * 31) as u8).collect();
    let ck_gbps = |kernel| {
        let ns = ns_per_item(2000, 1, || {
            std::hint::black_box(v6wire::checksum::checksum_with(kernel, &ck_buf));
        });
        ck_buf.len() as f64 / ns
    };
    let scalar_gbps = ck_gbps(v6wire::checksum::Kernel::Scalar);
    let swar_gbps = ck_gbps(v6wire::checksum::Kernel::Swar);
    let _ = writeln!(json, "  \"codec_zero_copy\": {{");
    let _ = writeln!(
        json,
        "    \"corpus_inputs\": {},",
        CORPUS_FRAMES.len() + CORPUS_DNS.len()
    );
    let _ = writeln!(
        json,
        "    \"wire_parse_owned_ns_per_frame\": {wire_owned:.1},"
    );
    let _ = writeln!(
        json,
        "    \"wire_parse_view_ns_per_frame\": {wire_view:.1},"
    );
    let _ = writeln!(
        json,
        "    \"wire_parse_speedup\": {:.2},",
        wire_owned / wire_view
    );
    let _ = writeln!(
        json,
        "    \"wire_summarize_ns_per_frame\": {wire_summarize:.1},"
    );
    let _ = writeln!(json, "    \"dns_decode_owned_ns_per_msg\": {dns_owned:.1},");
    let _ = writeln!(json, "    \"dns_parse_view_ns_per_msg\": {dns_view:.1},");
    let _ = writeln!(
        json,
        "    \"dns_parse_speedup\": {:.2},",
        dns_owned / dns_view
    );
    let _ = writeln!(json, "    \"checksum_scalar_gb_per_s\": {scalar_gbps:.2},");
    let _ = writeln!(json, "    \"checksum_swar_gb_per_s\": {swar_gbps:.2},");
    let _ = writeln!(
        json,
        "    \"full_trace_baseline_ms\": {BASELINE_FULL_TRACE_MS},"
    );
    let _ = writeln!(json, "    \"full_trace_ms\": {full_ms:.3},");
    let _ = writeln!(
        json,
        "    \"full_trace_speedup\": {:.2}",
        BASELINE_FULL_TRACE_MS / full_ms
    );
    let _ = writeln!(json, "  }},");

    // Fleet sweep (the acceptance benchmark), per trace mode.
    let cells = Scenario::matrix(0xBE9C);
    let _ = writeln!(json, "  \"fleet_sweep\": {{");
    let _ = writeln!(json, "    \"cells\": {},", cells.len());
    let mut hops_ms = 0.0;
    for (i, (label, mode)) in [
        ("off", TbTraceMode::Off),
        ("hops", TbTraceMode::Hops),
        ("full", TbTraceMode::Full),
    ]
    .into_iter()
    .enumerate()
    {
        for s in &cells {
            let _ = s.run_with_trace(mode); // warm-up
        }
        let secs = median_secs(7, || {
            for s in &cells {
                std::hint::black_box(s.run_with_trace(mode));
            }
        });
        if label == "hops" {
            hops_ms = secs * 1e3;
        }
        let comma = if i < 2 { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{label}\": {{ \"ms_per_sweep\": {:.3}, \"scenarios_per_sec\": {:.0} }}{comma}",
            secs * 1e3,
            cells.len() as f64 / secs,
        );
    }
    let _ = writeln!(json, "  }},");

    // The before/after the PR is judged on: pre-optimization single-thread
    // fleet sweep vs today's Hops-mode sweep.
    let _ = writeln!(json, "  \"baseline_pre_optimization\": {{");
    let _ = writeln!(json, "    \"fleet_ms_per_sweep\": {BASELINE_FLEET_MS},");
    let _ = writeln!(
        json,
        "    \"fleet_scenarios_per_sec\": {BASELINE_FLEET_ELEM_S}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"speedup_vs_baseline\": {:.2}",
        BASELINE_FLEET_MS / hops_ms
    );
    json.push_str("}\n");

    // Re-emit through the canonical JSON layer, preserving every section
    // owned by another writer (`population_census --bench`/`--warm-bench`
    // and the `just soak` load generator) — the examples own disjoint
    // sections of the same file, and a rerun here must not drop theirs.
    let mut doc = v6report::Json::parse(&json).expect("bench json parses");
    if let Ok(prev) = std::fs::read_to_string("BENCH_engine.json") {
        if let Ok(prev) = v6report::Json::parse(&prev) {
            for section in ["population_census", "service_soak", "warm_cell"] {
                if let Some(row) = prev.get(section) {
                    doc.set(section, row.clone());
                }
            }
        }
    }
    let mut text = doc.canonical();
    text.push('\n');

    print!("{text}");
    std::fs::write("BENCH_engine.json", &text).expect("write BENCH_engine.json");
    eprintln!("wrote BENCH_engine.json");
}
