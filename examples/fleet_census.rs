//! Run the full Fig. 4 scenario matrix — every paper OS profile ×
//! topology variant × IPv4 DNS intervention policy — as a parallel
//! fleet, print the per-scenario rows and the aggregate census, and
//! verify the parallel aggregate against the serial baseline.
//!
//! ```text
//! cargo run --release --example fleet_census
//! ```
//!
//! With `--faults` the same matrix additionally runs under every
//! impaired [`FaultVariant`], and a clean-vs-impaired census diff is
//! printed per OS profile — which populations still reach the
//! explanation portal when the uplink degrades, the DNS64 Pi crashes,
//! or the carrier NAT64 table is full:
//!
//! ```text
//! cargo run --release --example fleet_census -- --faults
//! ```

use v6fleet::{run_serial, FleetCensus, FleetReport, FleetRunner};
use v6testbed::scenario::FaultVariant;
use v6testbed::Scenario;

fn main() {
    let faults = std::env::args().any(|a| a == "--faults");
    let scenarios = Scenario::matrix(0x5c24);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 16);

    println!(
        "fleet: {} scenarios (full Fig. 4 matrix) on {} worker threads\n",
        scenarios.len(),
        threads
    );
    let run = FleetRunner::new(threads).run(&scenarios);
    print!("{}", run.report.render());
    println!(
        "\nwall-clock: {:?} total, {:.1} scenarios/s",
        run.wall.elapsed,
        run.wall.scenarios_per_sec()
    );

    // Aggregate interventions observed at the devices, fleet-wide.
    println!(
        "device totals: gateway nat64.outbound={} nat44.outbound={} | pi dnsmasq.poisoned={}",
        run.report.sum_device_counter("5g-gw", "nat64.outbound"),
        run.report.sum_device_counter("5g-gw", "nat44.outbound"),
        run.report
            .sum_device_counter("raspberry-pi", "dnsmasq.poisoned"),
    );

    let serial = run_serial(&scenarios);
    assert_eq!(
        serial, run.report,
        "parallel aggregate must equal the serial baseline"
    );
    println!("serial baseline check: identical ✓");

    if faults {
        fault_sweep(&run.report, threads);
    }
}

/// Run the matrix under each impaired variant and diff the per-OS
/// census against the clean baseline.
fn fault_sweep(clean: &FleetReport, threads: usize) {
    for fault in FaultVariant::ALL
        .into_iter()
        .filter(|f| *f != FaultVariant::Clean)
    {
        let scenarios = Scenario::matrix_with_fault(0x5c24, fault);
        let run = FleetRunner::new(threads).run(&scenarios);
        let impaired = &run.report;
        println!(
            "\n=== fault: {} ({} scenarios, {:?}) ===",
            fault.label(),
            scenarios.len(),
            run.wall.elapsed
        );
        let c = &impaired.census;
        println!(
            "census: accurate-v6only={} intervened={} degraded={} (clean: accurate-v6only={} intervened={})",
            c.accurate_v6only,
            c.intervened,
            c.degraded,
            clean.census.accurate_v6only,
            clean.census.intervened,
        );
        println!(
            "{:<28} {:>5} {:>10} {:>10} {:>8}",
            "os profile", "runs", "intervened", "(clean)", "degraded"
        );
        let clean_by_os: Vec<(String, FleetCensus)> = clean.census_by_os();
        for (os, row) in impaired.census_by_os() {
            let clean_row = clean_by_os
                .iter()
                .find(|(name, _)| *name == os)
                .map(|(_, r)| *r)
                .unwrap_or_default();
            let marker = if row.intervened < clean_row.intervened {
                "  ← portal lost"
            } else {
                ""
            };
            println!(
                "{:<28} {:>5} {:>10} {:>10} {:>8}{}",
                os, row.associated, row.intervened, clean_row.intervened, row.degraded, marker
            );
        }
    }
}
