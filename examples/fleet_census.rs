//! Run the full Fig. 4 scenario matrix — every paper OS profile ×
//! topology variant × IPv4 DNS intervention policy — as a parallel
//! fleet, print the per-scenario rows and the aggregate census, and
//! verify the parallel aggregate against the serial baseline.
//!
//! ```text
//! cargo run --release --example fleet_census
//! ```

use v6fleet::{run_serial, FleetRunner};
use v6testbed::Scenario;

fn main() {
    let scenarios = Scenario::matrix(0x5c24);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 16);

    println!(
        "fleet: {} scenarios (full Fig. 4 matrix) on {} worker threads\n",
        scenarios.len(),
        threads
    );
    let run = FleetRunner::new(threads).run(&scenarios);
    print!("{}", run.report.render());
    println!(
        "\nwall-clock: {:?} total, {:.1} scenarios/s",
        run.wall.elapsed,
        run.wall.scenarios_per_sec()
    );

    // Aggregate interventions observed at the devices, fleet-wide.
    println!(
        "device totals: gateway nat64.outbound={} nat44.outbound={} | pi dnsmasq.poisoned={}",
        run.report.sum_device_counter("5g-gw", "nat64.outbound"),
        run.report.sum_device_counter("5g-gw", "nat44.outbound"),
        run.report.sum_device_counter("raspberry-pi", "dnsmasq.poisoned"),
    );

    let serial = run_serial(&scenarios);
    assert_eq!(
        serial, run.report,
        "parallel aggregate must equal the serial baseline"
    );
    println!("serial baseline check: identical ✓");
}
