//! Deterministic generator for the committed codec-conformance corpus in
//! `tests/corpus/`.
//!
//! Every frame and DNS message is built from fixed inputs through the owned
//! encoders, so a rerun is byte-identical to the committed files — the
//! conformance suites (`crates/v6wire/tests/conformance.rs`,
//! `crates/v6dns/tests/conformance.rs`) embed the corpus with
//! `include_bytes!` and would fail on drift. Regenerate with:
//!
//! ```text
//! cargo run --release --example gen_corpus
//! ```

use std::fs;
use std::path::Path;

use v6dhcp::codec::{DhcpMessage, DhcpMessageType, DhcpOption};
use v6dns::codec::{Message, Question, RData, RType, Rcode, Record};
use v6dns::DnsName;
use v6wire::icmpv6::all_nodes;
use v6wire::ndp::{NdpOption, RouterAdvertisement, RouterPreference};
use v6wire::packet::{
    build_arp, build_icmpv4, build_icmpv6, build_tcp_v6, build_udp_v4, build_udp_v6,
};
use v6wire::{ArpPacket, Icmpv4Message, Icmpv6Message, MacAddr, TcpFlags, TcpSegment, UdpDatagram};

fn mac(n: u8) -> MacAddr {
    MacAddr::new([0x02, 0x53, 0x43, 0x32, 0x34, n])
}

fn name(s: &str) -> DnsName {
    s.parse().expect("valid corpus name")
}

/// The DHCPDISCOVER advertising RFC 8925 support (option 108 in the
/// parameter request list), as the paper's opt-in clients send it.
fn dhcp_discover() -> Vec<u8> {
    let mut msg = DhcpMessage::client(DhcpMessageType::Discover, 0x3903_f326, mac(0x50));
    msg.options
        .push(DhcpOption::ParameterRequestList(vec![1, 3, 6, 15, 108]));
    msg.options.push(DhcpOption::HostName("sc24-host".into()));
    build_udp_v4(
        mac(0x50),
        MacAddr::BROADCAST,
        "0.0.0.0".parse().unwrap(),
        "255.255.255.255".parse().unwrap(),
        &UdpDatagram::new(68, 67, msg.encode()),
    )
}

/// The DHCPOFFER answering with V6ONLY_WAIT (option 108 = 1800 s), the
/// paper's RFC 8925 signal plus the rfc8925.com suffix from Fig. 7.
fn dhcp_offer() -> Vec<u8> {
    let disc = DhcpMessage::client(DhcpMessageType::Discover, 0x3903_f326, mac(0x50));
    let mut msg = DhcpMessage::reply(DhcpMessageType::Offer, &disc);
    msg.yiaddr = "192.168.12.50".parse().unwrap();
    msg.siaddr = "192.168.12.251".parse().unwrap();
    msg.options
        .push(DhcpOption::ServerId("192.168.12.251".parse().unwrap()));
    msg.options.push(DhcpOption::LeaseTime(86400));
    msg.options
        .push(DhcpOption::SubnetMask("255.255.255.0".parse().unwrap()));
    msg.options
        .push(DhcpOption::DnsServers(vec!["192.168.12.251"
            .parse()
            .unwrap()]));
    msg.options
        .push(DhcpOption::DomainName("rfc8925.com".into()));
    msg.options.push(DhcpOption::V6OnlyPreferred(1800));
    build_udp_v4(
        mac(0xFE),
        MacAddr::BROADCAST,
        "192.168.12.251".parse().unwrap(),
        "255.255.255.255".parse().unwrap(),
        &UdpDatagram::new(67, 68, msg.encode()),
    )
}

/// A full router advertisement: PIO, RDNSS, DNSSL, MTU, source link-layer
/// and PREF64 (RFC 8781), low preference — every NDP option type the
/// testbed's gateway emits.
fn ra_full() -> Vec<u8> {
    let mut ra = RouterAdvertisement::new(1800);
    ra.cur_hop_limit = 64;
    ra.other_config = true;
    ra.preference = RouterPreference::Low;
    ra.options.push(NdpOption::SourceLinkLayer(mac(0xFE)));
    ra.options.push(NdpOption::PrefixInformation {
        prefix_len: 64,
        on_link: true,
        autonomous: true,
        valid_lifetime: 86400,
        preferred_lifetime: 14400,
        prefix: "fd00:976a:14b2:1::".parse().unwrap(),
    });
    ra.options.push(NdpOption::Mtu(1500));
    ra.options.push(NdpOption::Rdnss {
        lifetime: 1800,
        servers: vec!["fd00:976a::9".parse().unwrap()],
    });
    ra.options.push(NdpOption::Dnssl {
        lifetime: 1800,
        domains: vec!["rfc8925.com".into()],
    });
    ra.options.push(NdpOption::Pref64 {
        lifetime: 1800,
        prefix: "64:ff9b::".parse().unwrap(),
        prefix_len: 96,
    });
    build_icmpv6(
        mac(0xFE),
        MacAddr::for_ipv6_multicast(all_nodes()),
        "fe80::53:43ff:fe32:34fe".parse().unwrap(),
        all_nodes(),
        &Icmpv6Message::RouterAdvertisement(ra),
    )
}

/// The DNS message of a DNS64-synthesized AAAA response (64:ff9b::/96
/// mapping of the paper's ip6.me IPv4 literal).
fn dns_dns64_response() -> Vec<u8> {
    let q = Message::query(0x6464, Question::new(name("ip6.me"), RType::Aaaa));
    let mut resp = Message::response_to(&q, Rcode::NoError);
    resp.answers.push(Record::new(
        name("ip6.me"),
        60,
        RData::Aaaa("64:ff9b::1799:847".parse().unwrap()),
    ));
    resp.encode()
}

/// The synthesized-AAAA response as a full IPv6/UDP frame from the DNS64
/// resolver.
fn dns64_aaaa_frame() -> Vec<u8> {
    build_udp_v6(
        mac(0x09),
        mac(0x50),
        "fd00:976a::9".parse().unwrap(),
        "fd00:976a:14b2:1::50".parse().unwrap(),
        &UdpDatagram::new(53, 40153, dns_dns64_response()),
    )
}

/// The paper's poisoned-A intervention: every name resolves to the
/// explanation portal at 23.153.8.71 (dnsmasq `address=/#/23.153.8.71`).
fn dns_poisoned_a() -> Vec<u8> {
    let q = Message::query(0x4141, Question::new(name("vpn.anl.gov"), RType::A));
    let mut resp = Message::response_to(&q, Rcode::NoError);
    resp.answers.push(Record::new(
        name("vpn.anl.gov"),
        0,
        RData::A("23.153.8.71".parse().unwrap()),
    ));
    resp.encode()
}

/// The poisoned-A response as a full IPv4/UDP frame.
fn poisoned_a_frame() -> Vec<u8> {
    build_udp_v4(
        mac(0xFB),
        mac(0x50),
        "192.168.12.251".parse().unwrap(),
        "192.168.12.50".parse().unwrap(),
        &UdpDatagram::new(53, 51234, dns_poisoned_a()),
    )
}

/// A compression-heavy response exercising every RData arm of the codec,
/// including an unknown type carried raw.
fn dns_all_rtypes() -> Vec<u8> {
    let q = Message::query(
        7,
        Question::new(name("sc24.supercomputing.org"), RType::Any),
    );
    let mut resp = Message::response_to(&q, Rcode::NoError);
    resp.authoritative = true;
    resp.answers = vec![
        Record::new(
            name("sc24.supercomputing.org"),
            300,
            RData::A("190.92.158.4".parse().unwrap()),
        ),
        Record::new(
            name("sc24.supercomputing.org"),
            300,
            RData::Aaaa("64:ff9b::be5c:9e04".parse().unwrap()),
        ),
        Record::new(
            name("www.sc24.supercomputing.org"),
            60,
            RData::Cname(name("sc24.supercomputing.org")),
        ),
        Record::new(
            name("sc24.supercomputing.org"),
            600,
            RData::Mx {
                preference: 10,
                exchange: name("mail.sc24.supercomputing.org"),
            },
        ),
        Record::new(
            name("sc24.supercomputing.org"),
            600,
            RData::Txt(vec!["v=spf1 -all".into(), "sc24".into()]),
        ),
        Record::new(
            name("sc24.supercomputing.org"),
            5,
            RData::Raw(99, vec![1, 2, 3, 4, 5]),
        ),
    ];
    resp.authorities = vec![
        Record::new(
            name("supercomputing.org"),
            3600,
            RData::Ns(name("ns1.supercomputing.org")),
        ),
        Record::new(
            name("supercomputing.org"),
            300,
            RData::Soa {
                mname: name("ns1.supercomputing.org"),
                rname: name("hostmaster.supercomputing.org"),
                serial: 2024_0801,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 300,
            },
        ),
    ];
    resp.additionals = vec![Record::new(
        name("ns1.supercomputing.org"),
        3600,
        RData::A("198.51.100.53".parse().unwrap()),
    )];
    resp.encode()
}

/// A hand-built message whose question name is a compression pointer to
/// itself — must be rejected (`BadPointer`), never looped on.
fn dns_pointer_loop() -> Vec<u8> {
    let mut bytes = Message::query(1, Question::new(name("x"), RType::A)).encode();
    bytes[12] = 0xc0;
    bytes[13] = 12;
    bytes
}

fn main() {
    let dir = Path::new("tests/corpus");
    fs::create_dir_all(dir).expect("create tests/corpus");

    let arp = build_arp(
        mac(0x50),
        MacAddr::BROADCAST,
        &ArpPacket::request(
            mac(0x50),
            "192.168.12.50".parse().unwrap(),
            "192.168.12.251".parse().unwrap(),
        ),
    );

    let mut syn = TcpSegment::new(40000, 80, 0x1000_0001, 0, TcpFlags::SYN);
    syn.mss = Some(1440);
    let tcp_syn_v6 = build_tcp_v6(
        mac(0x50),
        mac(0xFE),
        "fd00:976a:14b2:1::50".parse().unwrap(),
        "2001:4810::110".parse().unwrap(),
        &syn,
    );

    let icmpv6_echo = build_icmpv6(
        mac(0x50),
        mac(0xFE),
        "fd00:976a:14b2:1::50".parse().unwrap(),
        "2620:0:861:ed1a::1".parse().unwrap(),
        &Icmpv6Message::EchoRequest {
            ident: 0x5c24,
            seq: 1,
            payload: b"sc24-ping".to_vec(),
        },
    );

    // The unreachable a v4-only host sees once the network is v6-only:
    // invoking bytes are the start of the original datagram's IP header.
    let invoking = {
        let orig = build_udp_v4(
            mac(0x50),
            mac(0xFE),
            "192.168.12.50".parse().unwrap(),
            "8.8.8.8".parse().unwrap(),
            &UdpDatagram::new(33000, 53, vec![0; 8]),
        );
        orig[14..14 + 28].to_vec()
    };
    let icmpv4_unreach = build_icmpv4(
        mac(0xFE),
        mac(0x50),
        "192.168.12.251".parse().unwrap(),
        "192.168.12.50".parse().unwrap(),
        &Icmpv4Message::DestinationUnreachable { code: 1, invoking },
    );

    let ns_target: std::net::Ipv6Addr = "fd00:976a:14b2:1::50".parse().unwrap();
    let ndp_ns = build_icmpv6(
        mac(0xFE),
        MacAddr::for_ipv6_multicast(v6wire::icmpv6::solicited_node(ns_target)),
        "fe80::53:43ff:fe32:34fe".parse().unwrap(),
        v6wire::icmpv6::solicited_node(ns_target),
        &Icmpv6Message::NeighborSolicitation(v6wire::ndp::NeighborSolicitation {
            target: ns_target,
            options: vec![NdpOption::SourceLinkLayer(mac(0xFE))],
        }),
    );

    // Adversarial wire entries: a frame cut mid-IPv4-header and a frame
    // whose UDP checksum no longer matches the payload.
    let truncated = dhcp_discover()[..31].to_vec();
    let mut bad_checksum = dns64_aaaa_frame();
    let n = bad_checksum.len();
    bad_checksum[n - 1] ^= 0xff;

    let frames: &[(&str, Vec<u8>)] = &[
        ("frame_dhcp_discover_opt108.bin", dhcp_discover()),
        ("frame_dhcp_offer_opt108.bin", dhcp_offer()),
        ("frame_ra_full.bin", ra_full()),
        ("frame_dns64_aaaa.bin", dns64_aaaa_frame()),
        ("frame_poisoned_a.bin", poisoned_a_frame()),
        ("frame_arp_request.bin", arp),
        ("frame_tcp_syn_v6.bin", tcp_syn_v6),
        ("frame_icmpv6_echo.bin", icmpv6_echo),
        ("frame_icmpv4_unreach.bin", icmpv4_unreach),
        ("frame_ndp_ns.bin", ndp_ns),
        ("frame_bad_truncated.bin", truncated),
        ("frame_bad_checksum.bin", bad_checksum),
    ];

    // DNS corpus: the first four must decode, the last two must be rejected
    // (truncated stream / pointer loop) with identical errors on both paths.
    let dns: &[(&str, Vec<u8>)] = &[
        (
            "dns_query_a.bin",
            Message::query(0x1234, Question::new(name("ip6.me"), RType::A)).encode(),
        ),
        ("dns_dns64_response.bin", dns_dns64_response()),
        ("dns_poisoned_a.bin", dns_poisoned_a()),
        ("dns_all_rtypes.bin", dns_all_rtypes()),
        ("dns_bad_truncated.bin", {
            let full = dns_all_rtypes();
            full[..full.len() * 2 / 3].to_vec()
        }),
        ("dns_bad_pointer_loop.bin", dns_pointer_loop()),
    ];

    for (file, bytes) in frames.iter().chain(dns.iter()) {
        fs::write(dir.join(file), bytes).expect("write corpus file");
        println!("{file}: {} bytes", bytes.len());
    }
}
