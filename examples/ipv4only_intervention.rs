//! The headline mechanism: gracefully informing IPv4-only clients why the
//! internet is unavailable, without touching RFC 8925 or dual-stack clients.
//!
//! Reproduces Figures 5, 6 and 9 interactively:
//!
//! ```sh
//! cargo run --example ipv4only_intervention
//! ```

use v6dns::codec::RType;
use v6dns::poison::PoisonPolicy;
use v6host::profiles::OsProfile;
use v6host::tasks::{AppTask, TaskOutcome};
use v6testbed::experiments as exp;
use v6testbed::{Testbed, TestbedConfig};

fn main() {
    println!("== Fig. 6: the Nintendo Switch experience ==");
    let r = exp::fig6_switch_intervention();
    println!("{}", r.render());
    if let TaskOutcome::HttpOk { body, .. } = &r.intervened {
        println!("--- the page the user sees ---");
        for line in body.lines() {
            println!("| {line}");
        }
    }
    println!(
        "after setting DNS to 9.9.9.9 by hand: peer = {:?} (the escape hatch)",
        r.after_override.peer()
    );

    println!("\n== Fig. 5: the erroneous 10/10 and its fix ==");
    let s = exp::fig5_erroneous_score();
    println!("legacy mirror:  {}", s.legacy.verdict);
    println!("revised mirror: {}", s.revised.verdict);

    println!("\n== Fig. 9: wildcard-A vs RPZ on non-existent names ==");
    for policy in [
        PoisonPolicy::WildcardA {
            answer: "23.153.8.71".parse().unwrap(),
            ttl: 60,
        },
        PoisonPolicy::ResponsePolicyZone {
            answer: "23.153.8.71".parse().unwrap(),
            ttl: 60,
        },
    ] {
        let r = exp::fig9_poisoned_nxdomain(policy);
        println!("{}", r.render());
    }

    println!("\n== rollback: the Ansible-playbook scenario (§VII) ==");
    // Build an intervened testbed, verify the redirect, then flip the
    // policy off and watch normal IPv4 DNS return.
    let mut tb = Testbed::build(TestbedConfig::default());
    let console = tb.add_host(OsProfile::nintendo_switch());
    tb.boot();
    let before = tb.run_task(
        console,
        AppTask::Nslookup {
            name: "sc24.supercomputing.org".parse().unwrap(),
            rtype: RType::A,
        },
        20,
    );
    println!("with intervention: {before:?}");
    tb.pi_server().poisoned.policy = PoisonPolicy::Off;
    let after = tb.run_task(
        console,
        AppTask::Nslookup {
            name: "sc24.supercomputing.org".parse().unwrap(),
            rtype: RType::A,
        },
        20,
    );
    println!("after rollback:    {after:?}");
}
