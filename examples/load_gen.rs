//! Service load generator: hammer the daemon's portal-scoring HTTP path
//! and report wall-clock latency percentiles.
//!
//! ```sh
//! # Boot an in-process daemon and soak it (also `just soak`):
//! cargo run --release --example load_gen -- --requests 2000 --clients 4 --bench BENCH_engine.json
//!
//! # Aim at an already-running daemon instead:
//! cargo run --release --example load_gen -- --addr 127.0.0.1:8925
//! ```
//!
//! Each client thread opens one connection per request (the daemon's
//! one-request-per-connection wire model), walks a disjoint stripe of
//! synthetic client indices through `GET /portal?client=N`, and records
//! the request wall time in a [`LatencySketch`]. Per-thread sketches
//! merge in thread order, so the *sample set* is deterministic even
//! though the timings are real. With `--bench FILE`, the percentiles
//! are merged into `BENCH_engine.json` as the `service_soak` row the
//! bench manifest normalizes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use v6fleet::LatencySketch;
use v6labd::{LabServer, ServerConfig};
use v6portal::http::{HttpRequest, HttpResponse};
use v6report::Json;

struct Args {
    requests: u64,
    clients: usize,
    addr: Option<SocketAddr>,
    bench: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        requests: 2_000,
        clients: 4,
        addr: None,
        bench: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--requests" => {
                args.requests = value(&flag)?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--clients" => {
                args.clients = value(&flag)?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--addr" => {
                args.addr = Some(value(&flag)?.parse().map_err(|e| format!("--addr: {e}"))?)
            }
            "--bench" => args.bench = Some(value(&flag)?),
            other => {
                return Err(format!(
                    "unknown flag {other}\nusage: load_gen [--requests N] [--clients N] [--addr HOST:PORT] [--bench FILE]"
                ))
            }
        }
    }
    if args.requests == 0 || args.clients == 0 {
        return Err("--requests and --clients must be ≥ 1".into());
    }
    Ok(args)
}

/// One `GET /portal?client=N` round trip; returns (micros, fig5 flag).
fn probe(addr: SocketAddr, client: u64) -> Result<(u64, bool), String> {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let raw = HttpRequest::format_get("localhost", &format!("/portal?client={client}"));
    stream
        .write_all(raw.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut bytes = Vec::new();
    stream
        .read_to_end(&mut bytes)
        .map_err(|e| format!("recv: {e}"))?;
    let response = HttpResponse::parse(&bytes).ok_or("truncated response")?;
    if response.status != 200 {
        return Err(format!("status {}", response.status));
    }
    let micros = start.elapsed().as_micros() as u64;
    let body = Json::parse(&response.body).map_err(|e| format!("body: {e}"))?;
    let fig5 = matches!(body.get("fig5_disagreement"), Some(Json::Bool(true)));
    Ok((micros, fig5))
}

/// Ask the daemon how many job workers it runs (`GET /metrics`), so the
/// soak row records the service shape it measured against.
fn fetch_workers(addr: SocketAddr) -> Option<u64> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let raw = HttpRequest::format_get("localhost", "/metrics");
    stream.write_all(raw.as_bytes()).ok()?;
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).ok()?;
    let response = HttpResponse::parse(&bytes)?;
    let body = Json::parse(&response.body).ok()?;
    match body.get("workers") {
        Some(Json::U64(w)) => Some(*w),
        _ => None,
    }
}

/// Merge the soak percentiles into `BENCH_engine.json` as the
/// `service_soak` row, preserving everything other tools wrote.
fn update_bench(
    path: &str,
    requests: u64,
    clients: usize,
    workers: Option<u64>,
    sketch: &LatencySketch,
    per_sec: f64,
) {
    let mut doc = match std::fs::read_to_string(path) {
        Ok(text) => Json::parse(&text).expect("existing bench file parses"),
        Err(_) => {
            let mut fresh = Json::obj();
            fresh.set("generated_by", Json::Str("examples/load_gen.rs".into()));
            fresh
        }
    };
    let pct = sketch.percentiles();
    let mut row = Json::obj();
    row.set("requests", Json::U64(requests));
    row.set("clients", Json::U64(clients as u64));
    if let Some(workers) = workers {
        row.set("workers", Json::U64(workers));
    }
    row.set("p50_us", Json::U64(pct.p50));
    row.set("p90_us", Json::U64(pct.p90));
    row.set("p99_us", Json::U64(pct.p99));
    row.set("requests_per_sec", Json::F64(per_sec));
    doc.set("service_soak", row);
    let mut text = doc.canonical();
    text.push('\n');
    std::fs::write(path, text).expect("write bench file");
    eprintln!("updated {path} (service_soak row)");
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    // Either aim at a running daemon or boot one in-process.
    let (addr, local) = match args.addr {
        Some(addr) => (addr, None),
        None => {
            let server = LabServer::start(ServerConfig::default()).expect("daemon starts");
            eprintln!("load_gen: booted in-process daemon on {}", server.addr);
            (server.addr, Some(server))
        }
    };

    let per_client = args.requests / args.clients as u64;
    let requests = per_client * args.clients as u64;
    eprintln!(
        "load_gen: {requests} requests across {} client(s) against {addr}/portal",
        args.clients
    );

    let start = Instant::now();
    let workers: Vec<_> = (0..args.clients)
        .map(|w| {
            std::thread::spawn(move || {
                let mut sketch = LatencySketch::new();
                let mut fig5 = 0u64;
                let mut errors = 0u64;
                // Disjoint per-thread stripes of the synthetic index
                // space → a deterministic overall client mix.
                for i in 0..per_client {
                    let client = w as u64 * per_client + i;
                    match probe(addr, client) {
                        Ok((micros, disagree)) => {
                            sketch.record(micros);
                            fig5 += u64::from(disagree);
                        }
                        Err(e) => {
                            errors += 1;
                            if errors <= 3 {
                                eprintln!("load_gen: client {client}: {e}");
                            }
                        }
                    }
                }
                (sketch, fig5, errors)
            })
        })
        .collect();

    let mut sketch = LatencySketch::new();
    let mut fig5 = 0u64;
    let mut errors = 0u64;
    for worker in workers {
        let (s, f, e) = worker.join().expect("client thread");
        sketch.merge_from(&s);
        fig5 += f;
        errors += e;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let per_sec = sketch.count as f64 / elapsed.max(f64::EPSILON);

    // Snapshot the worker count while the daemon is still up.
    let job_workers = fetch_workers(addr);

    if let Some(server) = local {
        server.stop();
    }

    let pct = sketch.percentiles();
    println!("requests        {}", sketch.count);
    println!("errors          {errors}");
    println!("fig5 disagree   {fig5}");
    println!("p50             {} us", pct.p50);
    println!("p90             {} us", pct.p90);
    println!("p99             {} us", pct.p99);
    println!("max             {} us", sketch.max);
    println!("throughput      {per_sec:.0} req/s over {elapsed:.2}s");

    if errors > 0 {
        eprintln!("load_gen: {errors} request(s) failed");
        std::process::exit(1);
    }
    if let Some(path) = &args.bench {
        update_bench(
            path,
            sketch.count,
            args.clients,
            job_workers,
            &sketch,
            per_sec,
        );
    }
}
