//! Capture the intervention exchange as a Wireshark-readable pcap plus a
//! human-readable hop trace — the diagnostic workflow the paper's operators
//! used (their Fig. 3 is a Wireshark screenshot of the gateway RA).
//!
//! ```sh
//! cargo run --example packet_trace
//! # then: wireshark /tmp/sc24v6-intervention.pcap
//! ```

use v6host::profiles::OsProfile;
use v6host::tasks::AppTask;
use v6testbed::Testbed;

fn main() {
    let mut tb = Testbed::paper_default();
    tb.net.capture_frames = true;
    let console = tb.add_host(OsProfile::nintendo_switch());
    tb.boot();
    tb.net.clear_trace(); // keep only the interesting part

    tb.net.capture_frames = true;
    let outcome = tb.run_task(
        console,
        AppTask::Browse {
            name: "sc24.supercomputing.org".parse().unwrap(),
            path: "/".into(),
        },
        25,
    );
    println!("outcome: reached {:?}", outcome.peer());

    println!("\n== hop trace of the intervention (first 25 hops) ==");
    for hop in tb.net.trace_hops().take(25) {
        println!(
            "{} {:>14} -> {:<14} [{:>4}B] {}",
            hop.at,
            hop.from,
            hop.to,
            hop.len,
            hop.summary.unwrap_or("")
        );
    }

    let path = std::env::temp_dir().join("sc24v6-intervention.pcap");
    tb.net.write_pcap(&path).expect("pcap written");
    println!(
        "\nwrote {} frames to {} — open it in Wireshark",
        tb.net.captured.len(),
        path.display()
    );
}
