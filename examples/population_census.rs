//! Population-scale census walkthrough: sample a large simulated client
//! population from the paper-default OS/topology/poison/fault mix and
//! stream it through the sharded census.
//!
//! ```sh
//! # The 1M-host census the issue's acceptance criterion names
//! # (also available as `just population`):
//! cargo run --release --example population_census -- --size 1000000 --bench BENCH_engine.json
//!
//! # A quick look at the default mix:
//! cargo run --release --example population_census -- --size 20000
//! ```
//!
//! Memory stays O(shards × sketch) no matter the size — no per-cell
//! result is ever materialized — and the printed census is byte-stable
//! across `--threads` and `--shards` (see `crates/v6fleet/tests/
//! population.rs` for the proofs). With `--bench FILE`, the run's
//! throughput is merged into `BENCH_engine.json` as the
//! `population_census` row the bench manifest normalizes.

use v6fleet::{FleetRunner, PopulationSpec};
use v6report::Json;

struct Args {
    size: u64,
    seed: u64,
    threads: usize,
    shards: usize,
    bench: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        size: 1_000_000,
        seed: 0x5c24,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(1, 16),
        shards: 0,
        bench: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--size" => args.size = value(&flag)?.parse().map_err(|e| format!("--size: {e}"))?,
            "--seed" => {
                let v = value(&flag)?;
                args.seed = u64::from_str_radix(v.trim_start_matches("0x"), 16)
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                args.threads = value(&flag)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--shards" => {
                args.shards = value(&flag)?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--bench" => args.bench = Some(value(&flag)?),
            other => {
                return Err(format!(
                    "unknown flag {other}\nusage: population_census [--size N] [--seed HEX] [--threads N] [--shards N] [--bench FILE]"
                ))
            }
        }
    }
    if args.shards == 0 {
        // Enough shards that the work queue stays balanced, few enough
        // that per-shard sketches stay negligible.
        args.shards = (args.threads * 8).max(8);
    }
    Ok(args)
}

/// Merge this run's throughput into `BENCH_engine.json` as the
/// `population_census` row, preserving everything `bench_report` wrote.
fn update_bench(path: &str, samples: u64, shards: usize, threads: usize, per_sec: f64) {
    let mut doc = match std::fs::read_to_string(path) {
        Ok(text) => Json::parse(&text).expect("existing bench file parses"),
        Err(_) => {
            let mut fresh = Json::obj();
            fresh.set(
                "generated_by",
                Json::Str("examples/population_census.rs".into()),
            );
            fresh
        }
    };
    let mut row = Json::obj();
    row.set("samples", Json::U64(samples));
    row.set("shards", Json::U64(shards as u64));
    row.set("threads", Json::U64(threads as u64));
    row.set("scenarios_per_sec", Json::F64(per_sec));
    doc.set("population_census", row);
    let mut text = doc.canonical();
    text.push('\n');
    std::fs::write(path, text).expect("write bench file");
    eprintln!("updated {path} (population_census row)");
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let spec = PopulationSpec::paper_default(args.seed, args.size);
    eprintln!(
        "sampling {} cells (seed {:#x}) on {} thread(s), {} shard(s)...",
        args.size, args.seed, args.threads, args.shards
    );
    let run = FleetRunner::new(args.threads).run_population(&spec, args.shards);
    print!("{}", run.report.render());
    let per_sec = run.wall.scenarios_per_sec();
    eprintln!(
        "wall: {:.2}s on {} thread(s) = {:.0} scenarios/sec",
        run.wall.elapsed.as_secs_f64(),
        run.wall.threads,
        per_sec,
    );
    if let Some(path) = &args.bench {
        update_bench(path, args.size, args.shards, args.threads, per_sec);
    }
}
