//! Population-scale census walkthrough: sample a large simulated client
//! population from the paper-default OS/topology/poison/fault mix and
//! stream it through the sharded census.
//!
//! ```sh
//! # The 1M-host census the issue's acceptance criterion names
//! # (also available as `just population`):
//! cargo run --release --example population_census -- --size 1000000 --bench BENCH_engine.json
//!
//! # A quick look at the default mix:
//! cargo run --release --example population_census -- --size 20000
//!
//! # Warm-vs-cold arena differential bench (also `just warm-bench`):
//! cargo run --release --example population_census -- --size 50000 --warm-bench BENCH_engine.json
//! ```
//!
//! Memory stays O(shards × sketch) no matter the size — no per-cell
//! result is ever materialized — and the printed census is byte-stable
//! across `--threads` and `--shards` (see `crates/v6fleet/tests/
//! population.rs` for the proofs). With `--bench FILE`, the run's
//! throughput is merged into `BENCH_engine.json` as the
//! `population_census` row the bench manifest normalizes.

use std::time::Instant;

use v6fleet::{CensusSketch, FleetRunner, PopulationSpec};
use v6report::Json;

struct Args {
    size: u64,
    seed: u64,
    threads: usize,
    shards: usize,
    bench: Option<String>,
    warm_bench: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        size: 1_000_000,
        seed: 0x5c24,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(1, 16),
        shards: 0,
        bench: None,
        warm_bench: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--size" => args.size = value(&flag)?.parse().map_err(|e| format!("--size: {e}"))?,
            "--seed" => {
                let v = value(&flag)?;
                args.seed = u64::from_str_radix(v.trim_start_matches("0x"), 16)
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                args.threads = value(&flag)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--shards" => {
                args.shards = value(&flag)?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--bench" => args.bench = Some(value(&flag)?),
            "--warm-bench" => args.warm_bench = Some(value(&flag)?),
            other => {
                return Err(format!(
                    "unknown flag {other}\nusage: population_census [--size N] [--seed HEX] [--threads N] [--shards N] [--bench FILE] [--warm-bench FILE]"
                ))
            }
        }
    }
    if args.shards == 0 {
        // Enough shards that the work queue stays balanced, few enough
        // that per-shard sketches stay negligible.
        args.shards = (args.threads * 8).max(8);
    }
    Ok(args)
}

/// Parse (or seed) the raw bench doc so a section rewrite preserves
/// every other writer's rows.
fn load_bench(path: &str) -> Json {
    match std::fs::read_to_string(path) {
        Ok(text) => Json::parse(&text).expect("existing bench file parses"),
        Err(_) => {
            let mut fresh = Json::obj();
            fresh.set(
                "generated_by",
                Json::Str("examples/population_census.rs".into()),
            );
            fresh
        }
    }
}

fn write_bench(path: &str, doc: &Json, section: &str) {
    let mut text = doc.canonical();
    text.push('\n');
    std::fs::write(path, text).expect("write bench file");
    eprintln!("updated {path} ({section} row)");
}

/// Merge this run's throughput into `BENCH_engine.json` as the
/// `population_census` row, preserving everything `bench_report` wrote.
fn update_bench(path: &str, samples: u64, shards: usize, threads: usize, per_sec: f64) {
    let mut doc = load_bench(path);
    let mut row = Json::obj();
    row.set("samples", Json::U64(samples));
    row.set("shards", Json::U64(shards as u64));
    row.set("threads", Json::U64(threads as u64));
    row.set("scenarios_per_sec", Json::F64(per_sec));
    doc.set("population_census", row);
    write_bench(path, &doc, "population_census");
}

/// The warm-vs-cold differential benchmark behind `just warm-bench`:
/// the same sampled population run three ways — cold (fresh testbed
/// per cell, the pre-PR-9 hot loop), warm single-core (one arena), and
/// warm on the full thread pool — with the aggregates asserted equal
/// before any number is recorded. Writes the `warm_cell` section.
fn run_warm_bench(args: &Args, path: &str) {
    let spec = PopulationSpec::paper_default(args.seed, args.size);
    eprintln!(
        "warm-bench: {} cells (seed {:#x}), cold vs warm x1 vs warm x{}...",
        args.size, args.seed, args.threads
    );

    // Cold baseline: build-and-throw-away, exactly what the census hot
    // loop did before the arena existed.
    let started = Instant::now();
    let mut cold_sketch = CensusSketch::new();
    for i in 0..args.size {
        let cell = spec.cell(i);
        cold_sketch.fold(cell, cell.run_observation());
    }
    let cold_per_sec = args.size as f64 / started.elapsed().as_secs_f64().max(f64::EPSILON);

    // Warm single-core: the production census path on one thread.
    let warm1 = FleetRunner::new(1).run_population(&spec, args.shards);
    let warm1_per_sec = warm1.wall.scenarios_per_sec();
    assert_eq!(
        warm1.report.sketch, cold_sketch,
        "warm census diverged from the cold baseline"
    );

    // Warm multi-thread: same spec, full pool — must merge to the same
    // report byte for byte.
    let warm_mt = FleetRunner::new(args.threads).run_population(&spec, args.shards);
    let warm_mt_per_sec = warm_mt.wall.scenarios_per_sec();
    assert_eq!(
        warm_mt.report, warm1.report,
        "thread count changed the census aggregate"
    );

    let speedup = warm1_per_sec / cold_per_sec.max(f64::EPSILON);
    let scaling = warm_mt_per_sec / warm1_per_sec.max(f64::EPSILON);
    println!("cold  x1:  {cold_per_sec:>9.0} scenarios/sec");
    println!("warm  x1:  {warm1_per_sec:>9.0} scenarios/sec  ({speedup:.2}x over cold)");
    println!(
        "warm x{:<2}: {warm_mt_per_sec:>9.0} scenarios/sec  ({scaling:.2}x over warm x1)",
        args.threads
    );
    println!("aggregates: identical across all three runs");

    let mut doc = load_bench(path);
    let mut row = Json::obj();
    row.set("samples", Json::U64(args.size));
    row.set("shards", Json::U64(args.shards as u64));
    row.set("threads", Json::U64(args.threads as u64));
    row.set("cold_scenarios_per_sec", Json::F64(cold_per_sec));
    row.set("warm_scenarios_per_sec", Json::F64(warm1_per_sec));
    row.set("speedup", Json::F64(speedup));
    row.set("warm_mt_scenarios_per_sec", Json::F64(warm_mt_per_sec));
    row.set("thread_scaling", Json::F64(scaling));
    doc.set("warm_cell", row);
    write_bench(path, &doc, "warm_cell");
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if let Some(path) = args.warm_bench.clone() {
        run_warm_bench(&args, &path);
        return;
    }
    let spec = PopulationSpec::paper_default(args.seed, args.size);
    eprintln!(
        "sampling {} cells (seed {:#x}) on {} thread(s), {} shard(s)...",
        args.size, args.seed, args.threads, args.shards
    );
    let run = FleetRunner::new(args.threads).run_population(&spec, args.shards);
    print!("{}", run.report.render());
    let per_sec = run.wall.scenarios_per_sec();
    eprintln!(
        "wall: {:.2}s on {} thread(s) = {:.0} scenarios/sec",
        run.wall.elapsed.as_secs_f64(),
        run.wall.threads,
        per_sec,
    );
    if let Some(path) = &args.bench {
        update_bench(path, args.size, args.shards, args.threads, per_sec);
    }
}
