//! Quickstart: build the paper's testbed, attach three very different
//! clients, and watch what each experiences.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use v6host::profiles::OsProfile;
use v6host::tasks::AppTask;
use v6testbed::Testbed;

fn browse(name: &str) -> AppTask {
    AppTask::Browse {
        name: name.parse().expect("valid name"),
        path: "/".into(),
    }
}

fn main() {
    // The Figure 4 topology: 5G gateway (NAT64, broken RA, rogue DHCP),
    // managed switch (RA injection + DHCP snooping), Raspberry Pi (healthy
    // DNS64 on fd00:976a::9, poisoned dnsmasq on its v4 address, DHCP with
    // option 108), and a small simulated internet.
    let mut tb = Testbed::paper_default();

    let macbook = tb.add_host(OsProfile::macos()); // RFC 8925 capable
    let laptop = tb.add_host(OsProfile::windows_10()); // dual-stack
    let console = tb.add_host(OsProfile::nintendo_switch()); // IPv4-only

    tb.boot(); // SLAAC + DHCPv4 (+ option 108) for everyone

    println!("=== after boot ===");
    for &h in &[macbook, laptop, console] {
        let host = tb.host(h);
        println!(
            "{:<28} v6-addrs={} v4-path={} rfc8925-engaged={}",
            host.profile.name,
            host.v6_addrs.len(),
            host.v4_active(),
            host.v6only_mode,
        );
    }

    println!("\n=== everyone browses the IPv4-only conference site ===");
    for &h in &[macbook, laptop, console] {
        let os = tb.host(h).profile.name.clone();
        let outcome = tb.run_task(h, browse("sc24.supercomputing.org"), 25);
        match outcome {
            v6host::tasks::TaskOutcome::HttpOk { peer, body, .. } => {
                println!("{os:<28} reached {peer}");
                if body.contains("helpdesk") {
                    println!("  -> got the IPv6-only intervention page:");
                    for line in body.lines().take(3) {
                        println!("     | {line}");
                    }
                }
            }
            other => println!("{os:<28} failed: {other:?}"),
        }
    }

    println!("\n=== census (paper §III.A) ===");
    let (entries, summary) = v6testbed::census(&mut tb);
    for e in &entries {
        println!(
            "{:<28} v6={} v4={} rfc8925={} accurate-v6only={}",
            e.os, e.has_v6, e.has_v4, e.rfc8925_engaged, e.accurate_counted
        );
    }
    println!(
        "associated={} naive-v6only={} accurate-v6only={}",
        summary.associated, summary.naive_v6only, summary.accurate_v6only
    );
}
