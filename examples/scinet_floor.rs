//! A show-floor-scale scenario: the full SC24v6 device mix on one testbed,
//! producing the device-compatibility matrix (TBL-A) and the census
//! comparison (TBL-B) the SCinet operators wanted.
//!
//! ```sh
//! cargo run --example scinet_floor
//! ```

use v6host::profiles::OsProfile;
use v6host::tasks::AppTask;
use v6testbed::{census, Testbed};

fn main() {
    println!("== TBL-A: per-OS outcome on the SC24v6 testbed ==");
    for row in v6testbed::experiments::tbl_a_device_matrix() {
        println!("{}", row.render());
    }

    println!("\n== TBL-B: census accuracy ==");
    let r = v6testbed::experiments::tbl_b_census();
    println!("{}", r.render());

    println!("\n== a busy floor: 24 mixed clients browsing at once ==");
    let mut tb = Testbed::paper_default();
    let mix = [
        OsProfile::macos(),
        OsProfile::ios(),
        OsProfile::android(),
        OsProfile::windows_10(),
        OsProfile::windows_11(),
        OsProfile::linux(),
        OsProfile::nintendo_switch(),
        OsProfile::windows_xp(),
    ];
    let mut hosts = Vec::new();
    for i in 0..24 {
        hosts.push(tb.add_host(mix[i % mix.len()].clone()));
    }
    tb.boot();
    let mut ok6 = 0;
    let mut ok4 = 0;
    let mut intervened = 0;
    let mut failed = 0;
    for &h in &hosts {
        let o = tb.run_task(
            h,
            AppTask::Browse {
                name: "ip6.me".parse().unwrap(),
                path: "/".into(),
            },
            25,
        );
        match o {
            v6host::tasks::TaskOutcome::HttpOk { peer, body, .. } => {
                if body.contains("helpdesk") {
                    intervened += 1;
                } else if peer.is_ipv6() {
                    ok6 += 1;
                } else {
                    ok4 += 1;
                }
            }
            _ => failed += 1,
        }
    }
    println!("24 clients: via-v6={ok6} via-v4={ok4} intervened={intervened} failed={failed}");
    let (_, summary) = census(&mut tb);
    println!(
        "census: associated={} naive-v6only={} accurate-v6only={}",
        summary.associated, summary.naive_v6only, summary.accurate_v6only
    );
    println!(
        "frames delivered in simulation: {}",
        tb.net.frames_delivered
    );
}
