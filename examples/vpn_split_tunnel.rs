//! The VPN lessons-learned scenarios (Figures 8 and 11): why the paper
//! recommends *against* further restricting IPv4 internet access, and why a
//! VPN user scored 0/10 on the SC23 mirror.
//!
//! ```sh
//! cargo run --example vpn_split_tunnel
//! ```

use v6testbed::experiments as exp;

fn main() {
    println!("== Fig. 8: split-tunnel VTC vs IPv4 restriction ==");
    println!("(split-tunnel tables use IPv4 literals, per the paper)");
    for blocked in [false, true] {
        let r = exp::fig8_vpn_split_tunnel(blocked);
        println!("{}", r.render());
    }
    println!(
        "\n-> this is why the paper keeps IPv4 internet reachable and uses\n\
         DNS interventions instead of ACLs: blocking v4 breaks split-tunnel\n\
         VTC for dual-stack users (APS CATs, §VI)."
    );

    println!("\n== Fig. 11: the VPN user's 0/10 mirror score ==");
    let r = exp::fig11_vpn_zero_score();
    println!("{}", r.render());
    println!("verdict shown to the user: {}", r.legacy.verdict);
}
