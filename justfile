# Project task runner. `just` with no arguments runs the full gate.

default: verify fleet chaos report-check lint

# Tier-1 verification: the root package must build in release and pass
# its unit + integration tests (this is the gate CI has always enforced).
verify:
    cargo build --release
    cargo test -q

# The fleet runner's own suite: crate tests, the cross-thread
# determinism integration tests, and the golden Fig. 6 trace.
fleet:
    cargo test -p v6fleet -q
    cargo test -q --test fleet
    cargo test -q --test golden_trace

# Lint gate: the whole workspace (every target) warning-clean, plus
# canonical formatting.
lint:
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --all --check

# Emit fresh canonical run manifests (clean matrix, every fault
# variant, the 100k sampled population, bench) into target/reports for
# inspection — never touches the committed goldens.
report:
    cargo run --release -p v6report -- emit --out target/reports

# The CI drift gate: re-run the canonical sweeps, diff the fresh
# manifests against the committed reports/*.json goldens, and fail on
# behavioural drift. Fresh manifests land in target/reports for
# post-mortem diffing.
report-check:
    cargo run --release -p v6report -- check

# Regenerate the committed reports/*.json goldens after a deliberate
# behaviour change (review the fixture diff, same as bless-traces!).
bless-reports:
    cargo run --release -p v6report -- emit

# Everything in the workspace, including property tests.
test-all:
    cargo test --workspace -q

# Chaos gate: the fault-injection layer's own tests, the seeded fault
# matrix smoke sweep (all impaired variants, serial == parallel), and
# the conservation/determinism property tests that must hold under any
# fault plan.
chaos:
    cargo test -p v6fault -q
    cargo test -q --test chaos
    cargo test -p v6sim -q --test prop_metrics

# Run the full Fig. 4 matrix through the parallel fleet and print the
# aggregate census.
census:
    cargo run --release --example fleet_census

# The same matrix additionally swept under every fault variant, with a
# clean-vs-impaired per-OS census diff.
census-faults:
    cargo run --release --example fleet_census -- --faults

# The full 1M-host population census (off CI's critical path): streams
# a million sampled cells through the sharded census and records
# scenarios/sec as the population_census row in BENCH_engine.json.
population:
    cargo run --release --example population_census -- --size 1000000 --bench BENCH_engine.json

# Cold-vs-warm arena bench: run the census three ways (cold
# build-and-throw-away, warm single-core arena, warm full pool), assert
# the aggregates byte-identical, and record the warm_cell row in
# BENCH_engine.json.
warm-bench:
    cargo run --release --example population_census -- --size 50000 --shards 8 --warm-bench BENCH_engine.json

# 1-vs-N worker-thread throughput on the 66-cell matrix.
bench-fleet:
    cargo bench -p v6bench --bench fleet_throughput

# The engine perf pair: raw forwarding ring per trace mode, then the
# fleet sweep the acceptance numbers come from.
bench:
    cargo bench -p v6bench --bench engine_hot_path
    cargo bench -p v6bench --bench fleet_throughput

# Regenerate BENCH_engine.json (frames/sec + events/sec per trace mode,
# fleet sweep timings, and the recorded pre-optimization baseline).
bench-report:
    cargo run --release --example bench_report

# One iteration of every bench body — proves the benches still run
# without paying for full sampling (what CI executes).
bench-smoke:
    cargo bench -p v6bench --bench engine_hot_path -- --test
    cargo bench -p v6bench --bench fleet_throughput -- --test
    cargo bench -p v6bench --bench population_census -- --test
    cargo bench -p v6bench --bench codec_zero_copy -- --test

# The differential codec-conformance pass at CI depth: owned-vs-view
# parse equality over the committed corpus plus 256 proptest cases per
# suite, both checksum kernels, and the frame-pool steady-state gate.
conformance:
    PROPTEST_CASES=256 cargo test -p v6wire --test conformance -q
    PROPTEST_CASES=256 cargo test -p v6wire --test prop_roundtrip -q
    PROPTEST_CASES=256 cargo test -p v6dns --test conformance -q
    SC24_CHECKSUM_KERNEL=scalar cargo test -p v6wire -q
    cargo test -q --test pool_steady_state

# The DNS realism lane at CI depth: master-file fixtures round-trip
# byte-identically, the iterative resolver matches the flat view (or
# classifies its failure) over 256 random delegation trees, the
# EDNS0/TCP-fallback and negative-cache suites, and the
# broken-delegation census gate against its committed golden.
dns-realism:
    PROPTEST_CASES=256 cargo test -p v6dns --test zone_roundtrip -q
    PROPTEST_CASES=256 cargo test -p v6dns --test delegation -q
    cargo test -p v6dns -q
    cargo test -p v6host -q
    cargo test -p v6testbed -q
    cargo run --release -p v6report -- check matrix_broken-delegation

# Regenerate the committed golden trace after a deliberate protocol
# change (review the fixture diff!).
bless-traces:
    BLESS_TRACES=1 cargo test -q --test golden_trace

# Run the v6labd daemon in the foreground (SIGTERM / POST /shutdown
# stops it). Port 0 picks an ephemeral port; pass one to pin it.
serve port="8925":
    cargo run --release -p v6labd -- serve --port {{port}} --threads 2

# Soak the service: boot an in-process daemon, hammer the portal-scoring
# HTTP path, and record latency percentiles as the service_soak row in
# BENCH_engine.json.
soak:
    cargo run --release --example load_gen -- --requests 2000 --clients 4 --bench BENCH_engine.json

# The daemon's own suite: cron/scheduler property tests, detector
# thresholds, the deterministic soak golden, and the end-to-end HTTP
# lifecycle tests.
labd:
    cargo test -p v6labd -q

# Full service lifecycle over real HTTP + SIGTERM (what CI runs).
service-smoke:
    bash scripts/service_smoke.sh

# Regenerate the committed soak golden (reports/soak_smoke.json) after
# a deliberate behaviour change (review the fixture diff!).
bless-soak:
    cargo run --release -p v6labd -- soak --write reports/soak_smoke.json
