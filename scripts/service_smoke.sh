#!/usr/bin/env bash
# Service smoke: boot the v6labd daemon on an ephemeral port, drive the
# full job lifecycle over real HTTP, diff the fetched manifest against
# the committed clean-matrix golden, and prove SIGTERM shuts it down
# gracefully. Client legwork uses the daemon binary's own get/post/
# submit subcommands, so the script needs no curl or jq.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/v6labd
LOG=$(mktemp)
cleanup() {
    if kill -0 "${DAEMON_PID:-0}" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -f "$LOG"
}
trap cleanup EXIT

cargo build --release -p v6labd

"$BIN" serve --threads 2 >"$LOG" 2>&1 &
DAEMON_PID=$!

# The daemon prints "v6labd: listening on 127.0.0.1:PORT" once bound.
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^v6labd: listening on //p' "$LOG" | head -n1)
    [ -n "$ADDR" ] && break
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "service_smoke: daemon died during startup:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "service_smoke: daemon never bound" >&2; exit 1; }
echo "service_smoke: daemon up on $ADDR"

# (Capture client output before grepping — `grep -q` closing the pipe
# early would EPIPE the client.)
HEALTH=$("$BIN" get "$ADDR" /health)
grep -q '"ok": true' <<<"$HEALTH"

# Submit the 66-cell clean matrix and poll it to completion; `submit`
# prints the final manifest, which must match the committed golden
# byte for byte.
"$BIN" submit "$ADDR" '{"kind":"matrix"}' >/tmp/service_smoke_manifest.json
diff -u reports/matrix_clean.json /tmp/service_smoke_manifest.json
echo "service_smoke: manifest matches reports/matrix_clean.json"

# The live metrics counted all 66 scenarios and the virtual clock ticked.
METRICS=$("$BIN" get "$ADDR" /metrics)
grep -q '"scenarios_done": 66' <<<"$METRICS"
INCIDENTS=$("$BIN" get "$ADDR" /incidents)
grep -q '"incidents"' <<<"$INCIDENTS"

# Graceful SIGTERM: the daemon must exit zero and say goodbye.
kill -TERM "$DAEMON_PID"
for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "service_smoke: daemon ignored SIGTERM" >&2
    exit 1
fi
wait "$DAEMON_PID" || { echo "service_smoke: daemon exited non-zero" >&2; exit 1; }
grep -q 'graceful shutdown complete' "$LOG"
echo "service_smoke: graceful shutdown confirmed"
