//! Offline API-subset shim for `criterion` 0.5 (see `shims/README.md`).
//!
//! Provides the harness surface the workspace's benches use: groups,
//! `bench_function`, `Throughput`, `sample_size`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is
//! median-of-samples over wall-clock `Instant`, printed to stdout —
//! adequate for relative comparisons, not statistically rigorous.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (re-export convenience).
pub use std::hint::black_box;

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// The benchmark harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _c: self,
            name,
            throughput: None,
            sample_size: 10,
        }
    }

    /// Set the default sample count (kept for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n;
        self
    }

    /// Bench outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&id, None, 10, f);
        self
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Attach throughput units to subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the sample count for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&id, self.throughput, self.sample_size, f);
        self
    }

    /// End the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// True when the bench binary was invoked with `--test` (the flag real
/// criterion uses for its smoke mode, and what `cargo bench -- --test`
/// forwards): run each benchmark body once to prove it works, skipping
/// calibration and sampling entirely.
fn smoke_mode() -> bool {
    static SMOKE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *SMOKE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

fn run_bench<F>(id: &str, throughput: Option<Throughput>, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if smoke_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("  {id:<50} smoke: ok (1 iter, {:?})", b.elapsed);
        return;
    }
    // Calibrate: grow the iteration count until one sample takes ≥ ~5 ms,
    // so per-iteration timings are measurable for fast functions.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    let time = format_seconds(median);
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / median / (1024.0 * 1024.0);
            println!("  {id:<50} {time:>12}/iter  {rate:>10.1} MiB/s");
        }
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / median;
            println!("  {id:<50} {time:>12}/iter  {rate:>10.0} elem/s");
        }
        None => println!("  {id:<50} {time:>12}/iter"),
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Bundle bench functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
