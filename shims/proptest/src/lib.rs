//! Offline API-subset shim for `proptest` 1 (see `shims/README.md`).
//!
//! Implements the strategy combinators, `any` / collection / sample /
//! option / regex-lite string strategies, and the `proptest!` /
//! `prop_assert*` / `prop_oneof!` macros this workspace's property tests
//! use. Differences from real proptest:
//!
//! * no shrinking — a failing case panics with the generated inputs;
//! * deterministic seeding — each test function derives its RNG stream
//!   from its own name, so runs are exactly reproducible;
//! * case count fixed at 64 (override with `PROPTEST_CASES`).

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`, `hash_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec` strategy over `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `HashSet` strategy over `element` with a size in `size`.
    pub fn hash_set<S>(element: S, size: std::ops::Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = rng.usize_in(self.size.clone());
            let mut out = HashSet::with_capacity(n);
            // Bounded attempts: duplicate draws simply shrink the set, like
            // real proptest's collection strategies under small domains.
            for _ in 0..n * 4 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`, `None` with probability 1/4.
    pub struct OptionStrategy<S>(S);

    /// Wrap `inner` in an `Option` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Sampling strategies (`select`, `Index`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T>(Vec<T>);

    /// Choose uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.usize_in(0..self.0.len())].clone()
        }
    }

    /// A position into collections whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Map this draw onto `0..len` (`len` must be non-zero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl crate::strategy::Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// The glob-import surface used by tests: `use proptest::prelude::*`.
pub mod prelude {
    /// Alias so `prop::sample::...` / `prop::collection::...` paths work.
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a property test, printing the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Union of strategies with a shared value type; picks one arm per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Define property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::test_runner::cases();
                for __case in 0..__cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}
