//! Core strategy trait and combinators for the proptest shim.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Object-safe core: combinators carry `where Self: Sized` so
/// `Box<dyn Strategy<Value = T>>` works (needed by [`Union`] /
/// `prop_oneof!`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Retry generation until `f` accepts the value (bounded; panics if the
    /// predicate never accepts — mirrors proptest's rejection limit).
    fn prop_filter<W, F>(self, _whence: W, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1024 consecutive candidates");
    }
}

/// Always produces a clone of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical uniform strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Canonical strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }

            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (<$t>::MAX as u128) - (self.start as u128) + 1;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*
    };
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($S:ident $idx:tt),+);)*) => {
        $(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategies! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

/// Box a strategy for use in a [`Union`] (`prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from the boxed arms (must be non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.usize_in(0..self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// String strategies from regex-lite patterns.
///
/// Supports the subset this workspace uses: a sequence of literal
/// characters or `[...]` character classes (with `a-z` ranges), each
/// optionally followed by `{m,n}` / `{m}` repetition.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unterminated character class")
                    + i;
                let body = &chars[i + 1..close];
                i = close + 1;
                expand_class(body)
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad repetition"),
                        n.trim().parse::<usize>().expect("bad repetition"),
                    ),
                    None => {
                        let m = body.trim().parse::<usize>().expect("bad repetition");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            let n = lo + (rng.next_u64() as usize) % (hi - lo + 1);
            for _ in 0..n {
                out.push(class[rng.usize_in(0..class.len())]);
            }
        }
        out
    }
}

fn expand_class(body: &[char]) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            assert!(lo <= hi, "inverted class range");
            out.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty character class");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_lite_patterns_respect_shape() {
        let mut rng = TestRng::for_case("regex_lite", 0);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9-]{0,14}".generate(&mut rng);
            assert!((1..=15).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = "[ -~]{1,60}".generate(&mut rng);
            assert!((1..=60).contains(&t.len()));
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            assert!((0u8..8).contains(&(0u8..8).generate(&mut rng)));
            assert!((1u8..).generate(&mut rng) >= 1);
            let v = (0u8..=128).generate(&mut rng);
            assert!(v <= 128);
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let u = Union::new(vec![boxed(Just(1u32)), boxed(Just(2u32))]);
        let mut rng = TestRng::for_case("union", 0);
        let draws: Vec<u32> = (0..64).map(|_| u.generate(&mut rng)).collect();
        assert!(draws.contains(&1) && draws.contains(&2));
    }
}
