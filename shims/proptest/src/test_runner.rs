//! Deterministic per-test RNG and case-count configuration for the shim.

/// Number of cases per property (default 64, `PROPTEST_CASES` overrides).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ seeded from the test name and case number: every run of a
/// given test explores the same inputs (reproducibility without a
/// regressions file).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        seed ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `usize` in `range` (must be non-empty).
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + (self.next_u64() as usize) % (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream_different_names_differ() {
        let mut a = TestRng::for_case("alpha", 3);
        let mut b = TestRng::for_case("alpha", 3);
        let mut c = TestRng::for_case("beta", 3);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
    }
}
