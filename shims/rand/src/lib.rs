//! Offline API-subset shim for `rand` 0.8 (see `shims/README.md`).
//!
//! Provides a deterministic xoshiro256++ generator behind the `StdRng` /
//! `SeedableRng` / `Rng` names the workspace uses. Not cryptographically
//! secure — simulation and benchmark seeding only.

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard {
    /// Sample one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The low-level generator interface: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform integer in `[low, high)`.
    fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }

    /// Sample a `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256++ generator (the shim's only engine).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// `rand::rngs` module mirror.
pub mod rngs {
    pub use super::StdRng;
}

macro_rules! standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_full_width() {
        let mut a = StdRng::seed_from_u64(0x5c24);
        let mut b = StdRng::seed_from_u64(0x5c24);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().any(|&x| x > u64::from(u32::MAX)), "top bits used");
        let _: u128 = a.gen();
        let _: bool = a.gen();
        let r = a.gen_range(10..20);
        assert!((10..20).contains(&r));
    }
}
