//! # sc24v6 — meta-crate for the IPv6-only testbed simulator
//!
//! Re-exports every workspace crate under one roof so examples, integration
//! tests and downstream users can depend on a single package.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! paper-to-module map.

pub use v6addr as addr;
pub use v6dhcp as dhcp;
pub use v6dns as dns;
pub use v6host as host;
pub use v6portal as portal;
pub use v6sim as sim;
pub use v6testbed as testbed;
pub use v6wire as wire;
pub use v6xlat as xlat;
