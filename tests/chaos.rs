//! Seeded fault-matrix smoke sweep: every impaired fault variant runs a
//! slice of the evaluation matrix, stays deterministic across thread
//! counts, and produces sane fault accounting. This is the `just chaos`
//! target's backbone — fast enough for CI, wide enough to catch a fault
//! path that panics, hangs, or breaks conservation on a real topology.

use v6fleet::{run_serial, FleetRunner};
use v6testbed::scenario::FaultVariant;
use v6testbed::Scenario;

/// One matrix slice per impaired variant, all checked the same way.
fn sweep(fault: FaultVariant) -> v6fleet::FleetReport {
    let scenarios: Vec<Scenario> = Scenario::matrix_with_fault(0xC405, fault)
        .into_iter()
        .take(8)
        .collect();
    let serial = run_serial(&scenarios);
    let parallel = FleetRunner::new(4).run(&scenarios);
    assert_eq!(
        parallel.report,
        serial,
        "{} fleet must be thread-count invariant",
        fault.label()
    );
    assert_eq!(parallel.report.render(), serial.render());
    serial
}

#[test]
fn lossy_uplink_sweep_is_deterministic_and_accounted() {
    let report = sweep(FaultVariant::LossyUplink);
    for r in &report.results {
        assert!(r.label.contains("lossy-uplink"));
        let f = &r.metrics.faults;
        // 25‰ loss over a browse workload's uplink traffic must bite
        // somewhere in the sweep; per-run it may round to zero (and fast
        // finishers end before the 16 s flap even starts).
        assert_eq!(
            r.metrics.total_frames_tx() + f.duplicated,
            r.metrics.engine.frames_forwarded
                + f.total_dropped()
                + r.metrics.engine.frames_dropped_unlinked,
            "conservation violated in {}",
            r.label
        );
    }
    let total_dropped: u64 = report
        .results
        .iter()
        .map(|r| r.metrics.faults.total_dropped())
        .sum();
    assert!(
        total_dropped > 0,
        "a lossy sweep with zero losses is not lossy"
    );
    assert!(report.census.degraded > 0);
}

#[test]
fn dns64_outage_sweep_is_deterministic_and_survivable() {
    let report = sweep(FaultVariant::Dns64Outage);
    let outage_hits: u64 = report
        .results
        .iter()
        .map(|r| r.metrics.faults.outage_dropped)
        .sum();
    assert!(
        outage_hits > 0,
        "the Pi outage must eat at least one frame somewhere"
    );
    // The outage is a crash window, not a permanent failure: at least one
    // client must still complete its browse workload afterwards.
    assert!(
        report
            .results
            .iter()
            .any(|r| r.verdict.sc24 != v6testbed::scenario::PathFamily::Fail),
        "nobody recovered from a 2.4 s resolver outage:\n{}",
        report.render()
    );
}

#[test]
fn nat64_exhaustion_sweep_is_deterministic_and_accounted() {
    let report = sweep(FaultVariant::Nat64Exhaustion);
    assert!(
        report.sum_device_counter("5g-gw", "nat64.dropped_table_full") > 0,
        "a zero-capacity NAT64 table must refuse someone:\n{}",
        report.render()
    );
    // No link impairment is installed for this variant: the damage is in
    // the device, not on the wire.
    for r in &report.results {
        assert_eq!(r.metrics.faults.total_dropped(), 0, "{}", r.label);
    }
    assert!(report.census.degraded > 0);
}

/// Clean control: the fault dimension's `Clean` arm changes nothing —
/// same seeds with and without the fault field produce equal reports.
#[test]
fn clean_variant_is_the_identity() {
    let base: Vec<Scenario> = Scenario::matrix(0xC405).into_iter().take(6).collect();
    let clean: Vec<Scenario> = Scenario::matrix_with_fault(0xC405, FaultVariant::Clean)
        .into_iter()
        .take(6)
        .collect();
    let a = run_serial(&base);
    let b = run_serial(&clean);
    assert_eq!(a, b);
    for r in &a.results {
        assert_eq!(r.metrics.faults, Default::default(), "{}", r.label);
    }
    assert_eq!(a.census.degraded, 0);
}
