//! ABL: the testbed on a *network-specific* NAT64 prefix instead of
//! 64:ff9b::/96 — gateway NAT64, Pi DNS64 and client CLATs all have to
//! agree, which is exactly what RFC 8781 PREF64 exists for. This exercises
//! the RFC 6052 general-prefix machinery end-to-end rather than only at the
//! unit level.

use std::net::IpAddr;
use v6addr::rfc6052::Nat64Prefix;
use v6dns::dns64::Dns64;
use v6dns::poison::PoisonedResolver;
use v6dns::server::CachingResolver;
use v6host::profiles::OsProfile;
use v6host::tasks::{AppTask, TaskOutcome};
use v6sim::gateway::FiveGGateway;
use v6sim::l2::Switch;
use v6testbed::zones::internet_dns;
use v6testbed::Testbed;
use v6xlat::nat64::{Nat64, Nat64Config};

const PREFIX: &str = "2602:5c24:64::/96";

/// Rebuild a default testbed onto the custom prefix.
fn custom_prefix_testbed() -> Testbed {
    let mut tb = Testbed::paper_default();
    let prefix = Nat64Prefix::new(PREFIX.parse().unwrap()).unwrap();
    // Gateway: NAT64 on the custom prefix.
    {
        let gw = tb.gw;
        let g = tb.net.node_mut::<FiveGGateway>(gw);
        let wan = g.wan_v4;
        g.nat64 = Nat64::new(
            prefix,
            vec![wan],
            Nat64Config {
                port_floor: 32768,
                ..Default::default()
            },
        );
    }
    // Pi: both resolvers synthesize into the custom prefix.
    {
        let pi = tb.pi_server();
        pi.healthy = CachingResolver::new(Dns64::new(internet_dns(), prefix));
        let policy = pi.poisoned.policy;
        pi.poisoned = PoisonedResolver::new(
            CachingResolver::new(Dns64::new(internet_dns(), prefix)),
            policy,
        );
    }
    // Switch RA: advertise the prefix via PREF64 so CLATs configure
    // themselves.
    {
        let sw = tb.sw;
        let switch = tb.net.node_mut::<Switch>(sw);
        switch.ra.as_mut().unwrap().pref64 =
            Some((PREFIX.trim_end_matches("/96").parse().unwrap(), 96));
    }
    tb
}

#[test]
fn dual_stack_browse_via_custom_prefix() {
    let mut tb = custom_prefix_testbed();
    let id = tb.add_host(OsProfile::windows_10());
    tb.boot();
    let o = tb.run_task(
        id,
        AppTask::Browse {
            name: "sc24.supercomputing.org".parse().unwrap(),
            path: "/".into(),
        },
        25,
    );
    match o {
        TaskOutcome::HttpOk { peer, status, .. } => {
            assert_eq!(status, 200);
            assert!(
                matches!(peer, IpAddr::V6(a) if a.to_string().starts_with("2602:5c24:64::")),
                "synthesized into the custom prefix: {peer}"
            );
        }
        other => panic!("browse failed: {other:?}"),
    }
}

#[test]
fn rfc8925_client_clat_follows_pref64() {
    let mut tb = custom_prefix_testbed();
    let id = tb.add_host(OsProfile::macos());
    tb.boot();
    {
        let h = tb.host(id);
        assert!(h.v6only_mode);
        let clat = h.clat.as_ref().expect("CLAT active");
        assert_eq!(
            clat.plat_prefix.prefix(),
            PREFIX.parse().unwrap(),
            "CLAT learned the PLAT prefix from PREF64, not the WKP"
        );
    }
    // An IPv4-literal app rides the custom prefix end to end.
    let o = tb.run_task(
        id,
        AppTask::LiteralV4 {
            addr: "44.12.7.9".parse().unwrap(),
            port: 5198,
        },
        25,
    );
    assert!(o.is_success(), "464XLAT over the custom prefix: {o:?}");
}

#[test]
fn ping_resolves_into_custom_prefix() {
    let mut tb = custom_prefix_testbed();
    let id = tb.add_host(OsProfile::linux());
    tb.boot();
    let o = tb.run_task(
        id,
        AppTask::Ping {
            name: "vpn.anl.gov".parse().unwrap(),
        },
        25,
    );
    // 130.202.228.253 == 0x82ca:e4fd under the custom prefix.
    assert!(
        matches!(o, TaskOutcome::PingReply { peer: IpAddr::V6(a) }
                 if a == "2602:5c24:64::82ca:e4fd".parse::<std::net::Ipv6Addr>().unwrap()),
        "ping: {o:?}"
    );
}
