//! Extension features beyond the paper's minimum testbed — the items its
//! §IV/§VI/§VII text describes as desired or upcoming:
//!
//! * AAA service-account exemptions (Argonne-Auth keeps IPv4 for tightly
//!   controlled devices)
//! * PREF64 (RFC 8781) — standards-track CLAT prefix discovery
//! * RFC 8910 captive-portal option — the "airplane WiFi" notification UX
//! * gateway reboot renumbering (the rotating /64 defect)

use v6host::profiles::OsProfile;
use v6host::stack::Host;
use v6sim::l2::Switch;
use v6testbed::Testbed;

/// §IV: "Service accounts will be created and tightly controlled for
/// devices which must retain IPv4-only support on Argonne-Auth."
#[test]
fn service_account_exemption_keeps_ipv4() {
    let mut tb = Testbed::paper_default();
    let exempt = tb.add_host(OsProfile::macos());
    let normal = tb.add_host(OsProfile::macos());
    let mac = tb.host(exempt).mac;
    tb.pi_server()
        .dhcp
        .as_mut()
        .expect("pi dhcp enabled")
        .config
        .v6only_exempt
        .insert(mac);
    tb.boot();
    let e = tb.host(exempt);
    assert!(!e.v6only_mode, "exempt service account keeps IPv4");
    assert!(e.v4_active());
    let n = tb.host(normal);
    assert!(n.v6only_mode, "everyone else goes IPv6-only");
    assert!(!n.v4_active());
}

/// RFC 8781: a PREF64-bearing RA lets the CLAT learn a *network-specific*
/// NAT64 prefix instead of assuming 64:ff9b::/96.
#[test]
fn pref64_configures_clat_prefix() {
    let mut tb = Testbed::paper_default();
    let id = tb.add_host(OsProfile::macos());
    {
        let sw = tb.sw;
        let switch = tb.net.node_mut::<Switch>(sw);
        switch.ra.as_mut().expect("managed switch has RA").pref64 =
            Some(("2001:db8:64::".parse().unwrap(), 96));
    }
    tb.boot();
    let h = tb.host(id);
    assert_eq!(
        h.pref64,
        Some("2001:db8:64::/96".parse().unwrap()),
        "PREF64 learned from the RA"
    );
    let clat = h.clat.as_ref().expect("CLAT active");
    assert_eq!(
        clat.plat_prefix.prefix(),
        "2001:db8:64::/96".parse().unwrap(),
        "CLAT uses the advertised prefix, not the WKP default"
    );
}

/// Without PREF64 the CLAT falls back to the well-known prefix — the
/// paper's hardwired configuration.
#[test]
fn clat_defaults_to_well_known_prefix() {
    let mut tb = Testbed::paper_default();
    let id = tb.add_host(OsProfile::macos());
    tb.boot();
    let h = tb.host(id);
    assert_eq!(h.pref64, None);
    assert!(h
        .clat
        .as_ref()
        .expect("CLAT active")
        .plat_prefix
        .is_well_known());
}

/// RFC 8910 (option 114): the captive-portal URI reaches IPv4 clients, the
/// channel §IV wants for the in-flight-WiFi-style notification.
#[test]
fn captive_portal_uri_delivered_to_v4_clients() {
    let mut tb = Testbed::paper_default();
    let console = tb.add_host(OsProfile::nintendo_switch());
    let mac_host = tb.add_host(OsProfile::macos());
    tb.pi_server()
        .dhcp
        .as_mut()
        .expect("pi dhcp enabled")
        .config
        .captive_portal = Some("https://ip6.me/why-no-internet".into());
    tb.boot();
    assert_eq!(
        tb.host(console).captive_portal.as_deref(),
        Some("https://ip6.me/why-no-internet"),
        "v4-only client receives option 114"
    );
    assert_eq!(
        tb.host(mac_host).captive_portal,
        None,
        "the RFC 8925 client never completes DHCPv4, so no URI"
    );
}

/// §IV.A: "Every reboot, the device would obtain a different /64 prefix" —
/// after a gateway power-cycle, clients pick up the new prefix via the next
/// RA while keeping the old (not yet expired) address.
#[test]
fn gateway_reboot_renumbers_clients() {
    let mut tb = Testbed::paper_default();
    let id = tb.add_host(OsProfile::linux());
    tb.boot();
    let before: Vec<_> = tb.host(id).v6_addrs.iter().map(|(a, p)| (*a, *p)).collect();
    assert_eq!(before.len(), 2, "gateway GUA + switch ULA");
    let gw = tb.gw;
    tb.net.node_mut::<v6sim::gateway::FiveGGateway>(gw).reboot();
    tb.run_secs(15);
    let after = &tb.host(id).v6_addrs;
    assert_eq!(
        after.len(),
        3,
        "a third address from the new /64: {after:?}"
    );
    let new_prefixes: Vec<_> = after
        .iter()
        .filter(|(a, _)| !before.iter().any(|(b, _)| b == a))
        .collect();
    assert_eq!(new_prefixes.len(), 1);
}

/// The exempt-device distinction shows up in the census too: a service
/// account is *not* IPv6-only.
#[test]
fn census_counts_exempt_devices_as_dual_stack() {
    let mut tb = Testbed::paper_default();
    let exempt = tb.add_host(OsProfile::macos());
    let _normal = tb.add_host(OsProfile::macos());
    let mac = tb.host(exempt).mac;
    tb.pi_server()
        .dhcp
        .as_mut()
        .expect("pi dhcp")
        .config
        .v6only_exempt
        .insert(mac);
    tb.boot();
    let (entries, summary) = v6testbed::census(&mut tb);
    assert_eq!(summary.associated, 2);
    assert_eq!(summary.accurate_v6only, 1, "{entries:?}");
    assert_eq!(summary.with_v4_path, 1);
}

/// Sanity: Host continues to expose stable public state after boot (guards
/// against accidental API regressions in the extension work).
#[test]
fn host_public_state_shape() {
    let mut tb = Testbed::paper_default();
    let id = tb.add_host(OsProfile::windows_10());
    tb.boot();
    let h: &mut Host = tb.host(id);
    assert!(h.v6_global_active());
    assert!(h.v4_active());
    assert!(!h.resolver_chain().is_empty());
    assert!(!h.search_domains.is_empty());
}
