//! Integration tests: one per paper figure/table (see DESIGN.md §3).
//!
//! Each test drives the full packet-level testbed via
//! `v6testbed::experiments` and asserts the *paper's observed outcome*.

use std::net::IpAddr;
use v6dns::poison::PoisonPolicy;
use v6host::tasks::TaskOutcome;
use v6testbed::experiments as exp;

#[test]
fn fig02_literal_v4_census() {
    let r = exp::fig2_literal_v4_census();
    assert!(
        r.echolink_worked,
        "the Echolink laptop reached its IPv4-literal service on the v6 SSID"
    );
    assert!(r.naive_counted, "SC23 census counts it anyway");
    assert!(
        !r.accurate_counted,
        "SC24 census must exclude a client with a live IPv4 path"
    );
}

#[test]
fn fig03_dead_rdnss_without_switch() {
    let r = exp::fig3_ra_workaround(false);
    assert_eq!(
        r.rdnss.len(),
        2,
        "gateway advertises the two dead ULAs: {:?}",
        r.rdnss
    );
    assert!(
        r.gateway_no_route_drops > 0,
        "queries to the dead ULA resolvers die at the gateway"
    );
    assert_eq!(r.pi_v6_answers, 0, "no Pi in the raw condition");
    // Dual-stack client survives by falling back to the gateway's v4 DNS.
    assert!(r.browse.is_success(), "{:?}", r.browse);
}

#[test]
fn fig03_managed_switch_workaround() {
    let r = exp::fig3_ra_workaround(true);
    assert!(
        r.rdnss.contains(&"fd00:976a::9".parse().unwrap()),
        "rdnss: {:?}",
        r.rdnss
    );
    assert!(r.pi_v6_answers > 0, "the Pi answers over IPv6 now");
    assert!(r.dns_v6_queries > 0);
    assert!(r.browse.is_success());
}

#[test]
fn fig04_topology_matrix() {
    let rows = exp::fig4_topology_matrix();
    assert_eq!(rows.len(), 4);
    let by_os = |name: &str| {
        rows.iter()
            .find(|r| r.os.contains(name))
            .unwrap_or_else(|| panic!("row for {name}"))
    };
    // macOS: RFC 8925 engaged, no IPv4 path, reaches the v4-only site via
    // NAT64 (a v6 peer), never intervened.
    let mac = by_os("macOS");
    assert!(mac.rfc8925_engaged);
    assert!(!mac.has_v4);
    assert!(
        matches!(mac.sc24.peer(), Some(IpAddr::V6(a)) if a.to_string().starts_with("64:ff9b::")),
        "sc24 via NAT64: {:?}",
        mac.sc24
    );
    assert!(!mac.intervened);
    // Windows 10: dual-stack; ip6me via genuine v6; not intervened.
    let win = by_os("Windows 10");
    assert!(!win.rfc8925_engaged);
    assert!(win.has_v4);
    assert!(matches!(win.ip6me.peer(), Some(IpAddr::V6(_))));
    assert!(!win.intervened);
    // Nintendo Switch: v4-only, intervened.
    let sw = by_os("Nintendo Switch");
    assert!(sw.has_v4);
    assert!(
        sw.intervened,
        "v4-only client must land on the explanation page"
    );
    assert_eq!(
        sw.sc24.peer(),
        Some(IpAddr::V4("23.153.8.71".parse().unwrap()))
    );
}

#[test]
fn fig05_erroneous_10_of_10() {
    let r = exp::fig5_erroneous_score();
    assert_eq!(
        r.legacy.points, 10,
        "legacy scoring is fooled by the poisoned redirect: {:?}",
        r.subtests
    );
    assert_eq!(
        r.revised.points, 0,
        "the revised logic detects the all-IPv4 reality"
    );
    assert!(r.revised.verdict.contains("helpdesk"));
}

#[test]
fn fig06_switch_intervention_and_escape() {
    let r = exp::fig6_switch_intervention();
    match &r.intervened {
        TaskOutcome::HttpOk { peer, body, .. } => {
            assert_eq!(*peer, IpAddr::V4("23.153.8.71".parse().unwrap()));
            assert!(body.contains("helpdesk"));
        }
        other => panic!("expected intervention page, got {other:?}"),
    }
    // "if the end user simply changed the DNS resolver to a known-good
    // server, access to the IPv4 internet would be granted."
    match &r.after_override {
        TaskOutcome::HttpOk { peer, .. } => {
            assert_eq!(*peer, IpAddr::V4("190.92.158.4".parse().unwrap()));
        }
        other => panic!("escape hatch failed: {other:?}"),
    }
}

#[test]
fn fig07_winxp_nat64_dns64() {
    let r = exp::fig7_winxp_nat64();
    // Browse of the v4-only site lands on its NAT64-translated address.
    assert!(
        matches!(r.browse_sc24.peer(), Some(IpAddr::V6(a)) if a == "64:ff9b::be5c:9e04".parse::<std::net::Ipv6Addr>().unwrap()),
        "browse: {:?}",
        r.browse_sc24
    );
    // Ping matches the paper's console output.
    assert!(
        matches!(r.ping_sc24, TaskOutcome::PingReply { peer: IpAddr::V6(a) } if a == "64:ff9b::be5c:9e04".parse::<std::net::Ipv6Addr>().unwrap()),
        "ping sc24: {:?}",
        r.ping_sc24
    );
    assert!(
        matches!(r.ping_ip6me, TaskOutcome::PingReply { peer: IpAddr::V6(a) } if a == "2001:4810:0:3::71".parse::<std::net::Ipv6Addr>().unwrap()),
        "ping ip6.me: {:?}",
        r.ping_ip6me
    );
    // XP has no IPv6 DNS transport.
    assert_eq!(r.dns_via_v6, 0);
    assert!(r.dns_via_v4 > 0);
}

#[test]
fn fig08_vpn_split_tunnel() {
    let ok = exp::fig8_vpn_split_tunnel(false);
    assert!(
        ok.vtc_direct.is_success(),
        "VTC direct works while v4 is open"
    );
    assert!(ok.tunneled.is_success(), "tunnel works while v4 is open");
    let blocked = exp::fig8_vpn_split_tunnel(true);
    assert!(
        !blocked.vtc_direct.is_success(),
        "restricting IPv4 breaks the split-tunnelled VTC (Fig. 8)"
    );
    assert!(
        !blocked.tunneled.is_success(),
        "the IPv4-only tunnel breaks too"
    );
}

#[test]
fn fig09_wildcard_answers_nonexistent_name() {
    let r = exp::fig9_poisoned_nxdomain(PoisonPolicy::WildcardA {
        answer: "23.153.8.71".parse().unwrap(),
        ttl: 60,
    });
    match &r.nslookup {
        TaskOutcome::DnsAnswer {
            answered_name,
            records,
        } => {
            assert_eq!(
                answered_name.to_string(),
                "vpn.anl.gov.rfc8925.com",
                "the suffixed, non-existent name got an answer"
            );
            assert_eq!(
                records[0].data,
                v6dns::codec::RData::A("23.153.8.71".parse().unwrap())
            );
        }
        other => panic!("unexpected nslookup outcome {other:?}"),
    }
    // "the ping results successfully obtain the desired AAAA record."
    assert!(
        matches!(r.ping, TaskOutcome::PingReply { peer: IpAddr::V6(a) } if a == "64:ff9b::82ca:e4fd".parse::<std::net::Ipv6Addr>().unwrap()),
        "ping: {:?}",
        r.ping
    );
}

#[test]
fn fig09_rpz_preserves_nxdomain() {
    // The conclusion's proposed mitigation.
    let r = exp::fig9_poisoned_nxdomain(PoisonPolicy::ResponsePolicyZone {
        answer: "23.153.8.71".parse().unwrap(),
        ttl: 60,
    });
    match &r.nslookup {
        TaskOutcome::DnsAnswer {
            answered_name,
            records,
        } => {
            assert_eq!(
                answered_name.to_string(),
                "vpn.anl.gov",
                "the suffixed candidate stayed NXDOMAIN; the real name answered"
            );
            assert_eq!(
                records[0].data,
                v6dns::codec::RData::A("23.153.8.71".parse().unwrap()),
                "still rewritten to the intervention address"
            );
        }
        other => panic!("unexpected nslookup outcome {other:?}"),
    }
}

#[test]
fn fig10_rdnss_preference_shields_from_poison() {
    let rows = exp::fig10_resolver_preference();
    let by_os = |name: &str| {
        rows.iter()
            .find(|r| r.os == name)
            .unwrap_or_else(|| panic!("row for {name}"))
    };
    // Win10 and Linux never consult the poisoned v4 resolver.
    for os in ["Windows 10", "Linux"] {
        let r = by_os(os);
        assert!(r.dns_via_v6 > 0, "{os} used RDNSS");
        assert_eq!(r.poisoned_a_answers, 0, "{os} untouched by poisoning");
        assert!(matches!(r.browse.peer(), Some(IpAddr::V6(_))));
    }
    // Win11 and XP do consult it — yet still browse over v6 thanks to the
    // valid AAAA answers (the paper's central no-impact claim).
    for os in ["Windows 11", "Windows XP"] {
        let r = by_os(os);
        assert!(r.poisoned_a_answers > 0, "{os} hit the poisoner");
        assert!(
            matches!(r.browse.peer(), Some(IpAddr::V6(_))),
            "{os} still browsed via v6: {:?}",
            r.browse
        );
    }
}

#[test]
fn fig11_vpn_zero_score() {
    let r = exp::fig11_vpn_zero_score();
    assert!(r.tunnel_up, "the VPN itself connects");
    assert_eq!(r.legacy.points, 0, "0/10 on the mirror (Fig. 11)");
    assert_eq!(r.revised.points, 0);
}

#[test]
fn tbl_a_device_matrix() {
    let rows = exp::tbl_a_device_matrix();
    assert_eq!(rows.len(), 11);
    // Every RFC 8925-capable OS ends v6-only and uninterfered.
    for os in ["macOS", "iOS", "Android", "Windows 11 (RFC8925)"] {
        let r = rows
            .iter()
            .find(|r| r.os.starts_with(os) && !r.os.contains("no CLAT"))
            .or_else(|| {
                rows.iter()
                    .find(|r| r.os.contains("RFC8925") && os.contains("RFC8925"))
            })
            .unwrap_or_else(|| panic!("row for {os}"));
        if r.os.contains("RFC8925") || ["macOS", "iOS", "Android"].contains(&r.os.as_str()) {
            assert!(r.rfc8925_engaged, "{}: option 108 must engage", r.os);
            assert!(!r.has_v4);
            assert!(!r.intervened);
            assert!(r.sc24.is_success(), "{}: NAT64 path works", r.os);
        }
    }
    // Every v4-only device is intervened.
    for r in rows.iter().filter(|r| {
        r.os.contains("Switch") || r.os.contains("printer") || r.os.contains("IPv6 disabled")
    }) {
        assert!(r.intervened, "{} must see the intervention page", r.os);
    }
    // Dual-stack devices (no 8925) are not intervened and browse via v6.
    for r in rows
        .iter()
        .filter(|r| ["Windows 10", "Windows 11", "Linux", "Windows XP"].contains(&r.os.as_str()))
    {
        assert!(!r.intervened, "{} must be unaffected", r.os);
        assert!(
            matches!(r.ip6me.peer(), Some(IpAddr::V6(_))),
            "{} browses ip6.me via v6: {:?}",
            r.os,
            r.ip6me
        );
    }
}

#[test]
fn tbl_b_census_accuracy() {
    let r = exp::tbl_b_census();
    assert_eq!(r.summary.associated, 16);
    assert_eq!(
        r.summary.naive_v6only, 16,
        "SC23-style counting claims everyone"
    );
    // Accurate count: only the RFC 8925 cohort (2 macOS + 2 iOS + 2 Android
    // + 1 future Win11) is genuinely IPv6-only.
    assert_eq!(r.summary.accurate_v6only, 7, "summary: {:?}", r.summary);
    assert!(r.overcount > 2.0);
}
