//! Fleet-runner regression tests: determinism across repeated runs and
//! serial/parallel equivalence of the aggregate report.

use v6fleet::{run_serial, FleetRunner};
use v6host::profiles::OsProfile;
use v6testbed::scenario::{FaultVariant, PathFamily, PoisonVariant, TopologyVariant};
use v6testbed::Scenario;

/// Running the same seeded fleet twice produces byte-identical reports:
/// `Eq` on the full structure (every per-node counter included) and on
/// the rendered text.
#[test]
fn same_seed_fleet_twice_is_byte_identical() {
    let scenarios: Vec<Scenario> = Scenario::matrix(0xA11CE).into_iter().take(12).collect();
    let a = FleetRunner::new(4).run(&scenarios);
    let b = FleetRunner::new(4).run(&scenarios);
    assert_eq!(a.report, b.report);
    assert_eq!(a.report.render(), b.report.render());
}

/// A 64-scenario fleet on 4 worker threads aggregates to exactly the
/// serial baseline — census, timing percentiles, and every scenario row.
#[test]
fn parallel_fleet_of_64_matches_serial_aggregate() {
    let scenarios: Vec<Scenario> = Scenario::matrix(0x5EED)
        .into_iter()
        .cycle()
        .zip(0..64u64)
        .map(|(mut s, i)| {
            // Re-seed the cycled tail so all 64 scenarios are distinct.
            s.seed = s.seed.wrapping_add(i << 32);
            s
        })
        .collect();
    assert_eq!(scenarios.len(), 64);
    let serial = run_serial(&scenarios);
    let parallel = FleetRunner::new(4).run(&scenarios);
    assert_eq!(parallel.report.census, serial.census);
    assert_eq!(parallel.report.timing, serial.timing);
    assert_eq!(parallel.report, serial);
}

/// Injected faults must not break determinism: the same seed and the
/// same `FaultPlan` give byte-identical reports whether the fleet runs
/// serially or across worker threads, for every fault variant at once.
#[test]
fn faulted_fleet_parallel_equals_serial() {
    let scenarios: Vec<Scenario> = [
        FaultVariant::LossyUplink,
        FaultVariant::Dns64Outage,
        FaultVariant::Nat64Exhaustion,
    ]
    .into_iter()
    .flat_map(|fault| {
        Scenario::matrix_with_fault(0xFA17, fault)
            .into_iter()
            .take(6)
    })
    .collect();
    assert_eq!(scenarios.len(), 18);
    let serial = run_serial(&scenarios);
    let parallel = FleetRunner::new(4).run(&scenarios);
    assert_eq!(parallel.report, serial);
    assert_eq!(parallel.report.render(), serial.render());
    assert!(
        serial.census.degraded > 0,
        "an impaired sweep must visibly degrade someone:\n{}",
        serial.render()
    );
}

/// The dns64-outage scenario is survivable *because* of the stub
/// resolver's retransmission backoff: the Pi is dark for 2.4 s right as
/// the browse starts, early queries die inside the outage, and a
/// backed-off retransmit lands after the Pi returns. The census must
/// still record the client reaching the explanation portal.
#[test]
fn dns64_outage_recovers_via_backoff() {
    let s = Scenario {
        os: OsProfile::nintendo_switch(),
        topology: TopologyVariant::PaperDefault,
        poison: PoisonVariant::WildcardA,
        fault: FaultVariant::Dns64Outage,
        seed: 0xD05,
    };
    let r = s.run();
    assert!(
        r.label.contains("dns64-outage"),
        "label carries the fault: {}",
        r.label
    );
    assert!(
        r.metrics.faults.outage_dropped > 0,
        "the outage must actually eat frames: {}",
        r.metrics
    );
    let host = r.metrics.node("host0-Nintendo Switch").expect("host row");
    assert!(
        host.device.get("dns.retransmits") > 0,
        "recovery goes through retransmission: {}",
        host.device
    );
    assert_eq!(
        r.verdict.sc24,
        PathFamily::V4,
        "browse recovers after the Pi returns"
    );
    assert!(
        r.verdict.intervened,
        "and still lands on the explanation portal"
    );
}

/// A saturated NAT64 table strands RFC 8925 clients (their v4-only
/// traffic has nowhere to go) while genuinely IPv4-only clients keep
/// working through NAT44 — the census records exactly that split.
#[test]
fn nat64_exhaustion_splits_census_by_profile() {
    let mk = |os, seed| Scenario {
        os,
        topology: TopologyVariant::PaperDefault,
        poison: PoisonVariant::WildcardA,
        fault: FaultVariant::Nat64Exhaustion,
        seed,
    };
    let scenarios = vec![
        mk(OsProfile::macos(), 0xE1),
        mk(OsProfile::nintendo_switch(), 0xE2),
    ];
    let report = run_serial(&scenarios);
    let mac = &report.results[0];
    let console = &report.results[1];
    assert_eq!(
        mac.verdict.sc24,
        PathFamily::Fail,
        "RFC 8925 client cannot reach the v4-only site without NAT64: {}",
        mac.render()
    );
    assert_eq!(
        console.verdict.sc24,
        PathFamily::V4,
        "v4-only console rides NAT44 and is unaffected: {}",
        console.render()
    );
    assert!(
        console.verdict.intervened,
        "portal still reachable for the console"
    );
    assert!(
        report.sum_device_counter("5g-gw", "nat64.dropped_table_full") > 0,
        "the refusals are accounted"
    );
    assert!(report.census.degraded >= 1);
    assert!(report.render().contains("degraded="));
}

/// Different base seeds change the client RNG streams but not the
/// experiment's verdicts: the matrix outcome is a property of the
/// topology, not of the seed.
#[test]
fn verdicts_are_seed_stable() {
    let a = run_serial(&Scenario::matrix(1).into_iter().take(6).collect::<Vec<_>>());
    let b = run_serial(&Scenario::matrix(2).into_iter().take(6).collect::<Vec<_>>());
    let verdicts = |r: &v6fleet::FleetReport| {
        r.results
            .iter()
            .map(|x| x.verdict.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(verdicts(&a), verdicts(&b));
    assert_eq!(a.census, b.census);
}

/// Trace verbosity is pure observation: the same scenario cell produces
/// an identical [`v6testbed::ScenarioResult`] — verdict, census row, and
/// the full engine metrics snapshot — in every [`TraceMode`].
#[test]
fn scenario_results_identical_across_trace_modes() {
    use v6testbed::TraceMode;
    // A spread of cells: both topologies, every poison, a faulted run.
    let mut cells: Vec<Scenario> = Scenario::matrix(0x7ACE).into_iter().take(9).collect();
    cells.push({
        let mut s = cells[0].clone();
        s.fault = FaultVariant::LossyUplink;
        s
    });
    for cell in &cells {
        let full = cell.run_with_trace(TraceMode::Full);
        let hops = cell.run_with_trace(TraceMode::Hops);
        let off = cell.run_with_trace(TraceMode::Off);
        assert_eq!(full, hops, "{}: Full vs Hops diverged", cell.label());
        assert_eq!(full, off, "{}: Full vs Off diverged", cell.label());
    }
}
