//! Fleet-runner regression tests: determinism across repeated runs and
//! serial/parallel equivalence of the aggregate report.

use v6fleet::{run_serial, FleetRunner};
use v6testbed::Scenario;

/// Running the same seeded fleet twice produces byte-identical reports:
/// `Eq` on the full structure (every per-node counter included) and on
/// the rendered text.
#[test]
fn same_seed_fleet_twice_is_byte_identical() {
    let scenarios: Vec<Scenario> = Scenario::matrix(0xA11CE).into_iter().take(12).collect();
    let a = FleetRunner::new(4).run(&scenarios);
    let b = FleetRunner::new(4).run(&scenarios);
    assert_eq!(a.report, b.report);
    assert_eq!(a.report.render(), b.report.render());
}

/// A 64-scenario fleet on 4 worker threads aggregates to exactly the
/// serial baseline — census, timing percentiles, and every scenario row.
#[test]
fn parallel_fleet_of_64_matches_serial_aggregate() {
    let scenarios: Vec<Scenario> = Scenario::matrix(0x5EED)
        .into_iter()
        .cycle()
        .zip(0..64u64)
        .map(|(mut s, i)| {
            // Re-seed the cycled tail so all 64 scenarios are distinct.
            s.seed = s.seed.wrapping_add(i << 32);
            s
        })
        .collect();
    assert_eq!(scenarios.len(), 64);
    let serial = run_serial(&scenarios);
    let parallel = FleetRunner::new(4).run(&scenarios);
    assert_eq!(parallel.report.census, serial.census);
    assert_eq!(parallel.report.timing, serial.timing);
    assert_eq!(parallel.report, serial);
}

/// Different base seeds change the client RNG streams but not the
/// experiment's verdicts: the matrix outcome is a property of the
/// topology, not of the seed.
#[test]
fn verdicts_are_seed_stable() {
    let a = run_serial(&Scenario::matrix(1).into_iter().take(6).collect::<Vec<_>>());
    let b = run_serial(&Scenario::matrix(2).into_iter().take(6).collect::<Vec<_>>());
    let verdicts = |r: &v6fleet::FleetReport| {
        r.results.iter().map(|x| x.verdict.clone()).collect::<Vec<_>>()
    };
    assert_eq!(verdicts(&a), verdicts(&b));
    assert_eq!(a.census, b.census);
}
