//! Golden-trace regression test: the canonical Fig. 6 switch-intervention
//! frame trace, diffed against a committed fixture.
//!
//! The simulator promises *exact* reproducibility — same topology, same
//! seeds, same totally-ordered event queue — so the frame-by-frame trace
//! of the paper's flagship interaction (a v4-only Nintendo Switch hitting
//! the wildcard-A intervention, then escaping via a DNS override) must
//! never change unless the protocol logic itself changes. When it does
//! change deliberately, regenerate with:
//!
//! ```text
//! BLESS_TRACES=1 cargo test --test golden_trace
//! ```
//! and review the fixture diff like any other code change.

use v6host::profiles::OsProfile;
use v6host::tasks::{AppTask, TaskOutcome};
use v6testbed::zones::addrs;
use v6testbed::Testbed;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/fig6_switch_intervention.trace"
);

fn browse() -> AppTask {
    AppTask::Browse {
        name: "sc24.supercomputing.org".parse().expect("static name"),
        path: "/".into(),
    }
}

/// Re-run the Fig. 6 steps and capture the post-boot frame trace.
fn canonical_fig6_trace() -> String {
    let mut tb = Testbed::paper_default();
    let id = tb.add_host(OsProfile::nintendo_switch());
    tb.boot();
    // Boot chatter (RAs, DHCP, NDP) is not the subject of Fig. 6 — the
    // trace starts at the first intervened browse.
    tb.net.clear_trace();

    let intervened = tb.run_task(id, browse(), 25);
    assert!(
        matches!(&intervened, TaskOutcome::HttpOk { body, .. } if body.contains("helpdesk")),
        "precondition: the console lands on the intervention page, got {intervened:?}"
    );
    // The user types a known-good resolver into the console's settings.
    tb.host(id).dns_override = Some(std::net::IpAddr::V4(
        addrs::PUBLIC_DNS_V4.parse().expect("static ip"),
    ));
    let escaped = tb.run_task(id, browse(), 25);
    assert!(
        escaped.is_success(),
        "precondition: override restores v4, got {escaped:?}"
    );

    tb.net.format_trace()
}

#[test]
fn fig6_switch_intervention_trace_matches_fixture() {
    let got = canonical_fig6_trace();
    assert!(
        got.lines().count() > 20,
        "trace suspiciously short — capture broken?"
    );
    if std::env::var_os("BLESS_TRACES").is_some() {
        std::fs::write(FIXTURE, &got).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — regenerate with BLESS_TRACES=1 cargo test --test golden_trace");
    if got != want {
        let first_diff = got
            .lines()
            .zip(want.lines())
            .position(|(g, w)| g != w)
            .unwrap_or_else(|| got.lines().count().min(want.lines().count()));
        let context = |s: &str| {
            s.lines()
                .skip(first_diff.saturating_sub(2))
                .take(5)
                .collect::<Vec<_>>()
                .join("\n")
        };
        panic!(
            "golden trace diverged at line {} ({} vs {} lines total)\n--- fixture ---\n{}\n--- actual ---\n{}\n\
             If this change is intentional, regenerate with BLESS_TRACES=1 and review the diff.",
            first_diff + 1,
            want.lines().count(),
            got.lines().count(),
            context(&want),
            context(&got),
        );
    }
}

/// The trace is identical across repeated in-process runs — the
/// guarantee the fixture comparison rests on.
#[test]
fn fig6_trace_is_reproducible_in_process() {
    assert_eq!(canonical_fig6_trace(), canonical_fig6_trace());
}
