//! RFC 8305 Happy Eyeballs ablation: a dual-stack client browsing a name
//! whose AAAA leads nowhere. Without HE, the user waits out the full
//! connection timeout before IPv4 is tried; with HE the fallback starts
//! 250 ms in. (Address selection per RFC 6724 still prefers the v6 path —
//! HE only changes *when* the fallback launches.)

use std::net::IpAddr;
use v6dns::codec::RData;
use v6dns::zone::Zone;
use v6host::profiles::OsProfile;
use v6host::tasks::{AppTask, TaskOutcome};
use v6testbed::Testbed;

/// Add a zone whose AAAA is black-holed but whose A record works.
fn add_broken_v6_site(tb: &mut Testbed) {
    let mut z = Zone::new("brokenv6.test".parse().unwrap(), 60);
    // 2602:dead::1 has no route on the internet core: SYNs vanish.
    z.add_str("@", 60, RData::Aaaa("2602:dead::1".parse().unwrap()));
    // The A record points at the (reachable) sc24 web server.
    z.add_str("@", 60, RData::A("190.92.158.4".parse().unwrap()));
    tb.pi_server()
        .healthy
        .upstream_mut()
        .upstream_mut()
        .add_zone(z);
}

fn run(he: bool) -> (TaskOutcome, u64) {
    let mut tb = Testbed::paper_default();
    let mut profile = OsProfile::windows_10();
    profile.happy_eyeballs = he;
    let id = tb.add_host(profile);
    add_broken_v6_site(&mut tb);
    tb.boot();
    let start = tb.net.now();
    let o = tb.run_task(
        id,
        AppTask::Browse {
            name: "brokenv6.test".parse().unwrap(),
            path: "/".into(),
        },
        25,
    );
    let elapsed_ms = (tb.net.now() - start).as_millis();
    (o, elapsed_ms)
}

#[test]
fn both_modes_eventually_fall_back_to_v4() {
    for he in [false, true] {
        let (o, _) = run(he);
        match &o {
            TaskOutcome::HttpOk { peer, .. } => {
                assert_eq!(
                    *peer,
                    IpAddr::V4("190.92.158.4".parse().unwrap()),
                    "he={he}: must land on the working A record"
                );
            }
            other => panic!("he={he}: fallback failed: {other:?}"),
        }
    }
}

#[test]
fn happy_eyeballs_is_faster() {
    let (_, without) = run(false);
    let (_, with) = run(true);
    assert!(
        with < without,
        "HE ({with} ms) must beat serial fallback ({without} ms)"
    );
    // Serial fallback can't beat the 500 ms attempt timeout; HE starts the
    // v4 attempt at 250 ms.
    assert!(without >= 500, "serial fallback waited {without} ms");
    assert!(with <= 600, "HE fallback took {with} ms");
}

/// With a *working* v6 destination, HE never even fires the fallback: the
/// connection stays v6 (no accidental v4 preference).
#[test]
fn happy_eyeballs_does_not_steal_from_working_v6() {
    let mut tb = Testbed::paper_default();
    let mut profile = OsProfile::windows_10();
    profile.happy_eyeballs = true;
    let id = tb.add_host(profile);
    tb.boot();
    let o = tb.run_task(
        id,
        AppTask::Browse {
            name: "ip6.me".parse().unwrap(),
            path: "/".into(),
        },
        25,
    );
    assert!(
        matches!(o.peer(), Some(IpAddr::V6(_))),
        "v6 wins when healthy: {o:?}"
    );
}
