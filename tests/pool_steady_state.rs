//! Frame-pool steady-state regression: once a host has warmed the resolver
//! cache and the frame-buffer recycle pool, repeated cached-zone browses
//! must be allocation-flat — every frame buffer comes from the pool
//! (`pool.reused` grows, `pool.allocated` stays put).
//!
//! Guards the zero-copy codec work: a decode path that quietly clones
//! buffers (or a summarize path that re-parses into owned structs per hop)
//! shows up here as `allocated` creep.

use v6host::profiles::OsProfile;
use v6host::tasks::AppTask;
use v6testbed::Testbed;

fn browse() -> AppTask {
    AppTask::Browse {
        name: "ip6.me".parse().unwrap(),
        path: "/".into(),
    }
}

#[test]
fn cached_zone_browse_is_allocation_flat() {
    let mut tb = Testbed::paper_default();
    let id = tb.add_host(OsProfile::windows_10());
    tb.boot();

    // Warm-up: populate DNS caches, neighbour tables, and the frame pool.
    for _ in 0..2 {
        let o = tb.run_task(id, browse(), 60);
        assert!(o.is_success(), "warm-up browse failed: {o:?}");
    }

    let warm = tb.net.metrics().pool;
    assert!(warm.allocated > 0, "pool never allocated during warm-up");

    // Steady state: the same cached browse, several times over.
    for round in 0..3 {
        let o = tb.run_task(id, browse(), 60);
        assert!(o.is_success(), "steady-state browse failed: {o:?}");
        let now = tb.net.metrics().pool;
        assert_eq!(
            now.allocated, warm.allocated,
            "round {round}: fresh frame allocations in steady state \
             (allocated {} -> {})",
            warm.allocated, now.allocated
        );
    }

    let after = tb.net.metrics().pool;
    assert!(
        after.reused > warm.reused,
        "steady-state browses never hit the recycle pool \
         (reused stuck at {})",
        warm.reused
    );
}
