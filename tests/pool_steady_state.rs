//! Frame-pool steady-state regression: once a host has warmed the resolver
//! cache and the frame-buffer recycle pool, repeated cached-zone browses
//! must be allocation-flat — every frame buffer comes from the pool
//! (`pool.reused` grows, `pool.allocated` stays put).
//!
//! Guards the zero-copy codec work: a decode path that quietly clones
//! buffers (or a summarize path that re-parses into owned structs per hop)
//! shows up here as `allocated` creep.
//!
//! The second gate extends the same discipline to the warm-cell arena
//! (PR 9): once every build configuration in a cell mix has run a few
//! times, the arena's *fresh* malloc count — the only pool counter a
//! recycle never resets — must stay flat while further cells stream
//! through on reused buffers.

use v6host::profiles::OsProfile;
use v6host::tasks::AppTask;
use v6testbed::scenario::{CellSpec, FaultVariant, OsProfileId, PoisonVariant, TopologyVariant};
use v6testbed::{CellArena, Testbed};

fn browse() -> AppTask {
    AppTask::Browse {
        name: "ip6.me".parse().unwrap(),
        path: "/".into(),
    }
}

#[test]
fn cached_zone_browse_is_allocation_flat() {
    let mut tb = Testbed::paper_default();
    let id = tb.add_host(OsProfile::windows_10());
    tb.boot();

    // Warm-up: populate DNS caches, neighbour tables, and the frame pool.
    for _ in 0..2 {
        let o = tb.run_task(id, browse(), 60);
        assert!(o.is_success(), "warm-up browse failed: {o:?}");
    }

    let warm = tb.net.metrics().pool;
    assert!(warm.allocated > 0, "pool never allocated during warm-up");

    // Steady state: the same cached browse, several times over.
    for round in 0..3 {
        let o = tb.run_task(id, browse(), 60);
        assert!(o.is_success(), "steady-state browse failed: {o:?}");
        let now = tb.net.metrics().pool;
        assert_eq!(
            now.allocated, warm.allocated,
            "round {round}: fresh frame allocations in steady state \
             (allocated {} -> {})",
            warm.allocated, now.allocated
        );
    }

    let after = tb.net.metrics().pool;
    assert!(
        after.reused > warm.reused,
        "steady-state browses never hit the recycle pool \
         (reused stuck at {})",
        warm.reused
    );
}

/// One round of a small-but-diverse cell mix: both topologies, every
/// poison policy, every fault variant, a rotating OS profile. Seeds
/// vary per round so the rounds are distinct workloads, not replays.
fn census_round(arena: &mut CellArena, round: u64) {
    let mut i = 0u64;
    for topology in TopologyVariant::ALL {
        for poison in PoisonVariant::ALL {
            for fault in FaultVariant::ALL {
                i += 1;
                arena.run_observation(CellSpec {
                    os: OsProfileId(((round + i) % OsProfileId::all().count() as u64) as u16),
                    topology,
                    poison,
                    fault,
                    seed: round * 1_000 + i,
                });
            }
        }
    }
}

#[test]
fn warm_arena_census_is_allocation_flat_at_steady_state() {
    let mut arena = CellArena::new();

    // Warm-up: two rounds build every slot cold and size each pool to
    // the mix's high-water frame demand (the lossy/outage cells need
    // more in-flight buffers than clean ones).
    for round in 0..2 {
        census_round(&mut arena, round);
    }
    let warm = arena.pool_fresh_allocations();
    assert!(warm > 0, "arena never allocated during warm-up");
    assert_eq!(
        arena.slot_count(),
        TopologyVariant::ALL.len() * PoisonVariant::ALL.len(),
        "one slot per build configuration"
    );

    // Steady state: further rounds must not malloc a single new frame
    // buffer — every cell runs on recycled pools.
    let warm_cells_before = arena.cells_warm();
    for round in 2..5 {
        census_round(&mut arena, round);
        assert_eq!(
            arena.pool_fresh_allocations(),
            warm,
            "round {round}: fresh frame mallocs in a warm arena"
        );
    }
    assert!(
        arena.cells_warm() > warm_cells_before,
        "steady-state rounds never hit a warm slot"
    );
}
