//! Failure injection and edge-condition integration tests: what the testbed
//! does when parts of it die or clients ask for things that don't exist.

use v6host::profiles::OsProfile;
use v6host::tasks::{AppTask, TaskOutcome};
use v6testbed::Testbed;

fn browse(name: &str) -> AppTask {
    AppTask::Browse {
        name: name.parse().unwrap(),
        path: "/".into(),
    }
}

/// The Pi dies mid-show: clients that depended on it lose DNS entirely
/// (both the healthy RDNSS and the poisoned DHCP resolver live there).
#[test]
fn pi_crash_takes_out_dns() {
    let mut tb = Testbed::paper_default();
    let id = tb.add_host(OsProfile::windows_10());
    tb.boot();
    // Sanity: working before the crash.
    let before = tb.run_task(id, browse("ip6.me"), 25);
    assert!(before.is_success());
    // Crash the Pi.
    tb.pi_server().enabled = false;
    let after = tb.run_task(id, browse("sc24.supercomputing.org"), 25);
    assert_eq!(after, TaskOutcome::DnsFailed, "no resolver left: {after:?}");
}

/// The Pi never comes up at all: with the gateway's DHCP snooped away, a
/// v4-only client gets no address and no DNS — total loss, which is why the
/// paper pairs snooping with the Pi deployment.
#[test]
fn pi_down_from_start_strands_v4_only_clients() {
    let mut tb = Testbed::paper_default();
    let console = tb.add_host(OsProfile::nintendo_switch());
    tb.pi_server().enabled = false;
    tb.boot();
    let h = tb.host(console);
    assert!(!h.v4_active(), "no DHCP server answered");
    let o = tb.run_task(console, browse("ip6.me"), 25);
    assert!(
        matches!(o, TaskOutcome::DnsFailed),
        "nothing works without the Pi: {o:?}"
    );
}

/// A v6-capable client with the Pi down still gets SLAAC from the gateway,
/// but every advertised resolver is dead → DNS fails by timeout.
#[test]
fn pi_down_leaves_v6_clients_without_dns() {
    let mut tb = Testbed::paper_default();
    let id = tb.add_host(OsProfile::linux());
    tb.pi_server().enabled = false;
    tb.boot();
    let h = tb.host(id);
    assert!(h.v6_global_active(), "SLAAC still works (gateway RA)");
    let o = tb.run_task(id, browse("ip6.me"), 30);
    assert_eq!(o, TaskOutcome::DnsFailed);
}

/// A ghost name under wildcard-A poisoning: the v4-only client is happily
/// redirected (dnsmasq semantics), while the RFC 8925 client correctly
/// fails — the poisoned A is unusable without an IPv4 stack.
#[test]
fn ghost_name_wildcard_poisoning_by_client_class() {
    let mut tb = Testbed::paper_default();
    let console = tb.add_host(OsProfile::nintendo_switch());
    let mac_host = tb.add_host(OsProfile::macos());
    tb.boot();
    let v4_outcome = tb.run_task(console, browse("no-such-site.invalid"), 25);
    match &v4_outcome {
        TaskOutcome::HttpOk { body, .. } => {
            assert!(body.contains("helpdesk"), "redirected to the portal")
        }
        other => panic!("v4-only client should land on the portal: {other:?}"),
    }
    let v6_outcome = tb.run_task(mac_host, browse("no-such-site.invalid"), 25);
    assert!(
        matches!(
            v6_outcome,
            TaskOutcome::DnsFailed | TaskOutcome::Unreachable
        ),
        "poisoned A must not mislead an IPv6-only client: {v6_outcome:?}"
    );
}

/// The frame trace captures the boot conversation with sensible summaries.
#[test]
fn trace_capture_is_usable() {
    let mut tb = Testbed::paper_default();
    tb.add_host(OsProfile::windows_10());
    tb.boot();
    let text = tb.net.format_trace();
    assert!(text.contains("5g-gw"), "gateway visible in trace");
    assert!(text.contains("raspberry-pi"), "pi visible in trace");
    assert!(text.contains("(DHCP)"), "DHCP exchange visible");
    assert!(text.contains("NDP router advertisement"), "RAs visible");
    assert!(tb.net.frames_delivered > 20);
}

/// Census over an empty testbed is well-defined.
#[test]
fn census_empty_testbed() {
    let mut tb = Testbed::paper_default();
    tb.boot();
    let (entries, summary) = v6testbed::census(&mut tb);
    assert!(entries.is_empty());
    assert_eq!(summary.associated, 0);
    assert_eq!(summary.accurate_v6only, 0);
}

/// Two testbeds with the same configuration produce identical outcomes —
/// the determinism claim in README.
#[test]
fn deterministic_replay() {
    let run = || {
        let mut tb = Testbed::paper_default();
        let a = tb.add_host(OsProfile::windows_10());
        let b = tb.add_host(OsProfile::macos());
        tb.boot();
        let o1 = tb.run_task(a, browse("ip6.me"), 25);
        let o2 = tb.run_task(b, browse("sc24.supercomputing.org"), 25);
        (o1, o2, tb.net.frames_delivered)
    };
    let first = run();
    let second = run();
    assert_eq!(first.0, second.0);
    assert_eq!(first.1, second.1);
    assert_eq!(first.2, second.2, "frame-for-frame identical");
}

/// Many simultaneous clients all complete their tasks (stress the switch
/// tables, DHCP pool and NAT64 BIBs at once).
#[test]
fn twenty_clients_concurrently() {
    let mut tb = Testbed::paper_default();
    let mix = [
        OsProfile::macos(),
        OsProfile::windows_10(),
        OsProfile::linux(),
        OsProfile::android(),
        OsProfile::nintendo_switch(),
    ];
    let hosts: Vec<_> = (0..20)
        .map(|i| tb.add_host(mix[i % mix.len()].clone()))
        .collect();
    tb.boot();
    let tids: Vec<_> = hosts
        .iter()
        .map(|&h| (h, tb.start_task(h, browse("ip6.me"))))
        .collect();
    tb.run_secs(30);
    for (h, tid) in tids {
        let outcome = tb.host(h).outcome(tid).cloned();
        assert!(
            matches!(outcome, Some(TaskOutcome::HttpOk { .. })),
            "host {h} failed: {outcome:?}"
        );
    }
}

/// A testbed run exports a valid pcap that parses back frame-for-frame.
#[test]
fn pcap_export_roundtrip() {
    let mut tb = Testbed::paper_default();
    tb.net.capture_frames = true;
    tb.add_host(OsProfile::windows_10());
    tb.boot();
    let n = tb.net.captured.len();
    assert!(n > 20, "captured {n} frames");
    let bytes = v6sim::pcap::to_pcap(&tb.net.captured);
    let back = v6sim::pcap::from_pcap(&bytes).expect("valid pcap");
    assert_eq!(back.len(), n);
    assert_eq!(back[0].bytes, tb.net.captured[0].bytes);
    // Every captured frame is a parseable Ethernet frame.
    for f in back.iter().take(50) {
        assert!(v6wire::packet::ParsedFrame::parse(&f.bytes).is_ok());
    }
}
