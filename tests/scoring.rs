//! ABL-2 integration: the mirror scoring matrix across client classes,
//! end-to-end through the packet-level testbed (not just the pure scoring
//! functions).

use v6host::profiles::OsProfile;
use v6testbed::experiments::run_mirror_test;
use v6testbed::TestbedConfig;

fn default_poison() -> v6dns::poison::PoisonPolicy {
    TestbedConfig::default().poison
}

/// A healthy RFC 8925 client earns 10/10 under both logics: its v6-only
/// operation is exactly what the revised mirror wants to certify.
#[test]
fn rfc8925_client_scores_10_10() {
    let r = run_mirror_test(OsProfile::macos(), default_poison());
    assert_eq!(r.legacy.points, 10, "subtests: {:?}", r.subtests);
    assert_eq!(r.revised.points, 10, "subtests: {:?}", r.subtests);
    assert!(r.revised.verdict.contains("IPv6-only operation confirmed"));
}

/// §VI: a properly configured dual-stack client gets 10/10 from the legacy
/// logic; the revision caps it at 9 and names the remaining step.
#[test]
fn dual_stack_client_capped_at_9() {
    let r = run_mirror_test(OsProfile::windows_10(), default_poison());
    assert_eq!(r.legacy.points, 10, "subtests: {:?}", r.subtests);
    assert_eq!(r.revised.points, 9, "subtests: {:?}", r.subtests);
    assert!(r.revised.verdict.contains("option 108"));
}

/// The Fig. 5 client (IPv6 disabled) and the Nintendo Switch both hit the
/// erroneous legacy 10/10; the revision sends them to the helpdesk.
#[test]
fn v4_only_clients_caught_by_revision() {
    for profile in [
        OsProfile::windows_10_v6_disabled(),
        OsProfile::nintendo_switch(),
    ] {
        let name = profile.name.clone();
        let r = run_mirror_test(profile, default_poison());
        assert_eq!(r.legacy.points, 10, "{name}: {:?}", r.subtests);
        assert_eq!(r.revised.points, 0, "{name}");
        assert!(r.revised.verdict.contains("helpdesk"), "{name}");
    }
}

/// Windows XP: v6 stack on, IPv4 resolver only — the AAAA answers flow
/// through the poisoned server to the DNS64, so its subtests ride IPv6 and
/// it still scores like a dual-stack machine.
#[test]
fn winxp_scores_like_dual_stack() {
    let r = run_mirror_test(OsProfile::windows_xp(), default_poison());
    assert_eq!(r.legacy.points, 10, "subtests: {:?}", r.subtests);
    assert_eq!(r.revised.points, 9, "subtests: {:?}", r.subtests);
}

/// With the intervention rolled back (policy off), the v4-only client fails
/// honestly instead of being redirected: low score, no erroneous 10.
#[test]
fn v4_only_without_intervention_scores_low() {
    let r = run_mirror_test(
        OsProfile::nintendo_switch(),
        v6dns::poison::PoisonPolicy::Off,
    );
    // Without poisoning, only the genuinely v4-reachable subtests pass.
    assert!(r.legacy.points < 10, "subtests: {:?}", r.subtests);
    assert_eq!(r.revised.points, 0);
}
